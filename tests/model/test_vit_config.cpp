/**
 * @file
 * Tests of the model zoo configurations.
 */

#include <gtest/gtest.h>

#include "model/vit_config.h"

namespace vitcod::model {
namespace {

TEST(ModelZoo, DeiTShapes)
{
    const auto tiny = deitTiny();
    const auto small = deitSmall();
    const auto base = deitBase();
    for (const auto *m : {&tiny, &small, &base}) {
        ASSERT_EQ(m->stages.size(), 1u);
        EXPECT_EQ(m->stages[0].layers, 12u);
        EXPECT_EQ(m->stages[0].tokens, 197u);
        EXPECT_EQ(m->stages[0].headDim, 64u);
        EXPECT_EQ(m->stages[0].mlpRatio, 4u);
    }
    EXPECT_EQ(tiny.stages[0].heads, 3u);
    EXPECT_EQ(small.stages[0].heads, 6u);
    EXPECT_EQ(base.stages[0].heads, 12u);
    EXPECT_EQ(base.stages[0].embedDim, 768u);
}

TEST(ModelZoo, LeViTPyramid)
{
    const auto m = levit128();
    ASSERT_EQ(m.stages.size(), 3u);
    EXPECT_EQ(m.stages[0].tokens, 196u);
    EXPECT_EQ(m.stages[1].tokens, 49u);
    EXPECT_EQ(m.stages[2].tokens, 16u);
    EXPECT_EQ(m.stages[0].heads, 4u);
    EXPECT_EQ(m.stages[2].heads, 12u);
    EXPECT_EQ(m.stages[0].mlpRatio, 2u);
    EXPECT_GT(m.stemFlops, 0.0);
}

TEST(ModelZoo, NominalSparsityOperatingPoints)
{
    // Paper Sec. VI-C: DeiT holds 90%, LeViT holds 80%.
    EXPECT_DOUBLE_EQ(deitBase().nominalSparsity, 0.90);
    EXPECT_DOUBLE_EQ(deitTiny().nominalSparsity, 0.90);
    EXPECT_DOUBLE_EQ(levit128().nominalSparsity, 0.80);
    EXPECT_DOUBLE_EQ(levit256().nominalSparsity, 0.80);
}

TEST(ModelZoo, StridedTransformerIsPoseTask)
{
    const auto m = stridedTransformer();
    EXPECT_EQ(m.task, Task::PoseEstimation);
    EXPECT_EQ(m.stages[0].tokens, 351u);
    EXPECT_EQ(m.totalLayers(), 6u);
}

TEST(ModelZoo, BertSequenceLengthParameterized)
{
    const auto m = bertBase(384);
    EXPECT_EQ(m.task, Task::NlpGlue);
    EXPECT_EQ(m.stages[0].tokens, 384u);
    EXPECT_EQ(m.stages[0].heads, 12u);
    EXPECT_EQ(m.totalLayers(), 12u);
}

TEST(ModelZoo, TotalLayersAndHeads)
{
    EXPECT_EQ(deitBase().totalLayers(), 12u);
    EXPECT_EQ(deitBase().totalHeads(), 144u);
    EXPECT_EQ(levit128().totalLayers(), 12u);
    EXPECT_EQ(levit128().totalHeads(), 4u * (4 + 8 + 12));
}

TEST(ModelZoo, CollectionsHaveExpectedMembers)
{
    EXPECT_EQ(coreSixModels().size(), 6u);
    const auto seven = allSevenModels();
    EXPECT_EQ(seven.size(), 7u);
    EXPECT_EQ(seven.front().name, "StridedTrans.");
}

TEST(ModelZoo, LookupByName)
{
    EXPECT_EQ(modelByName("DeiT-Base").stages[0].embedDim, 768u);
    EXPECT_EQ(modelByName("LeViT-192").stages[0].heads, 3u);
    EXPECT_EQ(modelByName("BERT-Base-n128").stages[0].tokens, 128u);
}

TEST(ModelZoo, BaselineQualityPublishedValues)
{
    EXPECT_NEAR(deitTiny().baselineQuality, 72.2, 1e-9);
    EXPECT_NEAR(deitBase().baselineQuality, 81.8, 1e-9);
    EXPECT_NEAR(levit256().baselineQuality, 81.6, 1e-9);
}

} // namespace
} // namespace vitcod::model
