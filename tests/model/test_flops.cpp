/**
 * @file
 * Tests of the FLOPs/bytes workload accounting.
 */

#include <gtest/gtest.h>

#include "model/flops.h"

namespace vitcod::model {
namespace {

TEST(Flops, DeiTBaseTotalInPublishedRange)
{
    // DeiT-Base is published as ~17.6 G multiply-accumulates; this
    // model counts 2 FLOPs per MAC, so expect ~35 G +- overheads.
    const double total = totalFlops(modelBreakdown(deitBase()));
    EXPECT_GT(total, 30e9);
    EXPECT_LT(total, 42e9);
}

TEST(Flops, DeiTSmallQuarterOfBase)
{
    // Width halves => projections/MLP quarter; attention-matmul term
    // only halves, so the ratio sits a bit below 4.
    const double base = totalFlops(modelBreakdown(deitBase()));
    const double small = totalFlops(modelBreakdown(deitSmall()));
    EXPECT_GT(base / small, 3.0);
    EXPECT_LT(base / small, 4.5);
}

TEST(Flops, MlpDominatesAttentionMatmulInFlops)
{
    // Paper Fig. 4 top: attention is NOT the FLOPs bottleneck.
    const Breakdown b = modelBreakdown(deitBase());
    EXPECT_GT(groupOf(b, OpGroup::Mlp).flops,
              groupOf(b, OpGroup::AttnMatMul).flops);
}

TEST(Flops, SparsityScalesAttentionTermsOnly)
{
    const Breakdown dense = modelBreakdown(deitBase(), 0.0);
    const Breakdown sparse = modelBreakdown(deitBase(), 0.9);
    EXPECT_NEAR(groupOf(sparse, OpGroup::AttnMatMul).flops,
                groupOf(dense, OpGroup::AttnMatMul).flops * 0.1,
                groupOf(dense, OpGroup::AttnMatMul).flops * 0.01);
    EXPECT_DOUBLE_EQ(groupOf(sparse, OpGroup::Mlp).flops,
                     groupOf(dense, OpGroup::Mlp).flops);
    EXPECT_DOUBLE_EQ(groupOf(sparse, OpGroup::QkvProj).flops,
                     groupOf(dense, OpGroup::QkvProj).flops);
}

TEST(Flops, ReshapeHasBytesButNoFlops)
{
    const Breakdown b = modelBreakdown(deitSmall());
    EXPECT_DOUBLE_EQ(groupOf(b, OpGroup::Reshape).flops, 0.0);
    EXPECT_GT(groupOf(b, OpGroup::Reshape).bytes, 0.0);
}

TEST(Flops, BytesScaleWithElementSize)
{
    const Breakdown b2 = modelBreakdown(deitTiny(), 0.0, 2);
    const Breakdown b4 = modelBreakdown(deitTiny(), 0.0, 4);
    EXPECT_NEAR(totalBytes(b4) / totalBytes(b2), 2.0, 0.05);
}

TEST(Flops, AttentionFlopsSubsetOfTotal)
{
    const Breakdown b = modelBreakdown(levit192());
    EXPECT_LT(attentionFlops(b), totalFlops(b));
    EXPECT_GT(attentionFlops(b), 0.0);
}

TEST(Flops, StemCountedUnderOther)
{
    const Breakdown b = modelBreakdown(levit128());
    EXPECT_GT(groupOf(b, OpGroup::Other).flops, 0.0);
}

TEST(AttentionShapes, OnePerBlockInOrder)
{
    const auto shapes = attentionShapes(levit128());
    ASSERT_EQ(shapes.size(), 12u);
    EXPECT_EQ(shapes[0].tokens, 196u);
    EXPECT_EQ(shapes[4].tokens, 49u);
    EXPECT_EQ(shapes[11].tokens, 16u);
    for (size_t i = 0; i < shapes.size(); ++i)
        EXPECT_EQ(shapes[i].layerIndex, i);
}

TEST(AttentionShapes, DeiTUniform)
{
    const auto shapes = attentionShapes(deitSmall());
    ASSERT_EQ(shapes.size(), 12u);
    for (const auto &s : shapes) {
        EXPECT_EQ(s.tokens, 197u);
        EXPECT_EQ(s.heads, 6u);
        EXPECT_EQ(s.headDim, 64u);
    }
}

TEST(Flops, GroupNamesDistinct)
{
    for (size_t i = 0; i < static_cast<size_t>(OpGroup::NumGroups);
         ++i) {
        for (size_t j = i + 1;
             j < static_cast<size_t>(OpGroup::NumGroups); ++j) {
            EXPECT_STRNE(opGroupName(static_cast<OpGroup>(i)),
                         opGroupName(static_cast<OpGroup>(j)));
        }
    }
}

} // namespace
} // namespace vitcod::model
