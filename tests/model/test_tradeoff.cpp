/**
 * @file
 * Tests of the Fig. 1 trade-off curve encodings.
 */

#include <gtest/gtest.h>

#include "model/tradeoff_curves.h"

namespace vitcod::model {
namespace {

TEST(TradeoffCurves, SixNlpCurves)
{
    const auto curves = nlpBleuCurves();
    EXPECT_EQ(curves.size(), 6u);
    for (const auto &c : curves) {
        EXPECT_TRUE(c.dynamicPattern);
        EXPECT_EQ(c.points.size(), 6u);
    }
}

TEST(TradeoffCurves, TwoVitCurves)
{
    const auto curves = vitAccuracyCurves();
    EXPECT_EQ(curves.size(), 2u);
    for (const auto &c : curves)
        EXPECT_FALSE(c.dynamicPattern);
}

TEST(TradeoffCurves, NlpCollapsesPastMediumSparsity)
{
    // The Fig. 1 contrast: every NLP curve loses >5 BLEU from 50%
    // to 90% sparsity.
    for (const auto &c : nlpBleuCurves()) {
        const double at50 = c.qualityAt(0.5);
        const double at90 = c.qualityAt(0.9);
        EXPECT_GT(at50 - at90, 5.0) << c.name;
    }
}

TEST(TradeoffCurves, VitHoldsAccuracyAt90)
{
    // <=1.5% drop at 90% sparsity (paper abstract).
    for (const auto &c : vitAccuracyCurves()) {
        const double dense = c.qualityAt(0.1);
        const double at90 = c.qualityAt(0.9);
        EXPECT_LE(dense - at90, 1.5) << c.name;
    }
}

TEST(TradeoffCurves, MonotoneNonIncreasing)
{
    auto check = [](const TradeoffCurve &c) {
        for (size_t i = 1; i < c.points.size(); ++i)
            EXPECT_LE(c.points[i].quality,
                      c.points[i - 1].quality + 1e-9)
                << c.name;
    };
    for (const auto &c : nlpBleuCurves())
        check(c);
    for (const auto &c : vitAccuracyCurves())
        check(c);
}

TEST(TradeoffCurves, InterpolationBetweenPoints)
{
    TradeoffCurve c{"t", false, {{0.0, 10.0}, {1.0, 20.0}}};
    EXPECT_DOUBLE_EQ(c.qualityAt(0.5), 15.0);
    EXPECT_DOUBLE_EQ(c.qualityAt(0.25), 12.5);
}

TEST(TradeoffCurves, ClampsOutsideRange)
{
    TradeoffCurve c{"t", false, {{0.2, 5.0}, {0.8, 1.0}}};
    EXPECT_DOUBLE_EQ(c.qualityAt(0.0), 5.0);
    EXPECT_DOUBLE_EQ(c.qualityAt(1.0), 1.0);
}

} // namespace
} // namespace vitcod::model
