/**
 * @file
 * Tests of the BitMask dense binary mask.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "sparse/bitmask.h"

namespace vitcod::sparse {
namespace {

BitMask
diagonalMask(size_t n, size_t band)
{
    BitMask m(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            if ((r > c ? r - c : c - r) <= band)
                m.set(r, c, true);
    return m;
}

TEST(BitMask, StartsEmpty)
{
    BitMask m(5, 7);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_DOUBLE_EQ(m.density(), 0.0);
    EXPECT_DOUBLE_EQ(m.sparsity(), 1.0);
}

TEST(BitMask, SetGetRoundTrip)
{
    BitMask m(4, 4);
    m.set(1, 2, true);
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_FALSE(m.get(2, 1));
    m.set(1, 2, false);
    EXPECT_FALSE(m.get(1, 2));
}

TEST(BitMask, NnzCounting)
{
    BitMask m(3, 3);
    m.set(0, 0, true);
    m.set(1, 1, true);
    m.set(1, 2, true);
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_EQ(m.nnzInRow(1), 2u);
    EXPECT_EQ(m.nnzInCol(2), 1u);
    EXPECT_EQ(m.nnzInCol(0), 1u);
}

TEST(BitMask, DensityOfHalfFilled)
{
    BitMask m(2, 2);
    m.set(0, 0, true);
    m.set(1, 1, true);
    EXPECT_DOUBLE_EQ(m.density(), 0.5);
}

TEST(BitMask, SymmetricPermutePreservesNnz)
{
    Rng rng(1);
    BitMask m(16, 16);
    for (int i = 0; i < 60; ++i)
        m.set(rng.uniformInt(16), rng.uniformInt(16), true);
    const auto perm = rng.permutation(16);
    const BitMask p = m.permuteSymmetric(perm);
    EXPECT_EQ(p.nnz(), m.nnz());
}

TEST(BitMask, SymmetricPermuteMapsElements)
{
    BitMask m(3, 3);
    m.set(0, 1, true);
    // perm = [2,0,1]: new(r,c) = old(perm[r], perm[c]).
    const std::vector<uint32_t> perm{2, 0, 1};
    const BitMask p = m.permuteSymmetric(perm);
    // old(0,1) appears where perm[r]==0 && perm[c]==1 -> r=1, c=2.
    EXPECT_TRUE(p.get(1, 2));
    EXPECT_EQ(p.nnz(), 1u);
}

TEST(BitMask, SymmetricPermuteIdentity)
{
    Rng rng(2);
    BitMask m(8, 8);
    for (int i = 0; i < 20; ++i)
        m.set(rng.uniformInt(8), rng.uniformInt(8), true);
    std::vector<uint32_t> id(8);
    std::iota(id.begin(), id.end(), 0);
    EXPECT_EQ(m.permuteSymmetric(id), m);
}

TEST(BitMask, PermuteColsMovesColumns)
{
    BitMask m(2, 3);
    m.set(0, 2, true);
    const std::vector<uint32_t> perm{2, 0, 1};
    const BitMask p = m.permuteCols(perm);
    EXPECT_TRUE(p.get(0, 0)); // old col 2 is now col 0
    EXPECT_FALSE(p.get(0, 2));
}

TEST(BitMask, PermuteRowsMovesRows)
{
    BitMask m(3, 2);
    m.set(2, 1, true);
    const std::vector<uint32_t> perm{2, 0, 1};
    const BitMask p = m.permuteRows(perm);
    EXPECT_TRUE(p.get(0, 1));
}

TEST(BitMask, SliceColsExtractsRange)
{
    BitMask m(2, 6);
    m.set(0, 3, true);
    m.set(1, 5, true);
    const BitMask s = m.sliceCols(3, 6);
    EXPECT_EQ(s.cols(), 3u);
    EXPECT_TRUE(s.get(0, 0));
    EXPECT_TRUE(s.get(1, 2));
    EXPECT_EQ(s.nnz(), 2u);
}

TEST(BitMask, LogicalOps)
{
    BitMask a(2, 2);
    BitMask b(2, 2);
    a.set(0, 0, true);
    a.set(0, 1, true);
    b.set(0, 1, true);
    b.set(1, 1, true);
    EXPECT_EQ((a | b).nnz(), 3u);
    EXPECT_EQ((a & b).nnz(), 1u);
    EXPECT_TRUE((a & b).get(0, 1));
}

TEST(BitMask, DiagonalFractionPureDiagonal)
{
    const BitMask m = diagonalMask(32, 1);
    EXPECT_DOUBLE_EQ(m.diagonalFraction(1), 1.0);
    EXPECT_DOUBLE_EQ(m.diagonalFraction(0), 1.0 * 32 / m.nnz());
}

TEST(BitMask, DiagonalFractionDenseColumn)
{
    BitMask m(16, 16);
    for (size_t r = 0; r < 16; ++r)
        m.set(r, 0, true); // one global column
    // Only (0,0) and (1,0) are within band 1.
    EXPECT_DOUBLE_EQ(m.diagonalFraction(1), 2.0 / 16.0);
}

TEST(BitMask, DefaultConstructedIsEmpty)
{
    BitMask m;
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.cols(), 0u);
}

} // namespace
} // namespace vitcod::sparse
