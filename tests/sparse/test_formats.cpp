/**
 * @file
 * Tests of COO/CSR/CSC formats, conversions and mask profiling,
 * including randomized round-trip property tests.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/formats.h"

namespace vitcod::sparse {
namespace {

BitMask
randomMask(size_t rows, size_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    BitMask m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.uniform() < density)
                m.set(r, c, true);
    return m;
}

TEST(Csr, FromMaskStructure)
{
    BitMask m(3, 4);
    m.set(0, 1, true);
    m.set(0, 3, true);
    m.set(2, 0, true);
    const Csr csr = Csr::fromMask(m);
    csr.validate();
    EXPECT_EQ(csr.nnz(), 3u);
    EXPECT_EQ(csr.rowNnz(0), 2u);
    EXPECT_EQ(csr.rowNnz(1), 0u);
    EXPECT_EQ(csr.rowNnz(2), 1u);
    EXPECT_EQ(csr.colIdx()[0], 1u);
    EXPECT_EQ(csr.colIdx()[1], 3u);
}

TEST(Csr, FromMaskWithValues)
{
    BitMask m(2, 2);
    m.set(0, 0, true);
    m.set(1, 1, true);
    const Csr csr = Csr::fromMask(m, [](size_t r, size_t c) {
        return static_cast<float>(10 * r + c);
    });
    EXPECT_FLOAT_EQ(csr.values()[0], 0.0f);
    EXPECT_FLOAT_EQ(csr.values()[1], 11.0f);
}

TEST(Csr, MaskRoundTrip)
{
    const BitMask m = randomMask(23, 31, 0.2, 5);
    EXPECT_EQ(Csr::fromMask(m).toMask(), m);
}

TEST(Csr, CooRoundTrip)
{
    const BitMask m = randomMask(17, 13, 0.3, 6);
    const Csr a = Csr::fromMask(m, [](size_t r, size_t c) {
        return static_cast<float>(r * 100 + c);
    });
    const Csr b = Csr::fromCoo(a.toCoo());
    EXPECT_EQ(b.toMask(), m);
    EXPECT_EQ(a.values(), b.values());
}

TEST(Csc, FromMaskStructure)
{
    BitMask m(4, 3);
    m.set(1, 0, true);
    m.set(3, 0, true);
    m.set(0, 2, true);
    const Csc csc = Csc::fromMask(m);
    csc.validate();
    EXPECT_EQ(csc.nnz(), 3u);
    EXPECT_EQ(csc.colNnz(0), 2u);
    EXPECT_EQ(csc.colNnz(1), 0u);
    EXPECT_EQ(csc.colNnz(2), 1u);
    EXPECT_EQ(csc.rowIdx()[0], 1u);
    EXPECT_EQ(csc.rowIdx()[1], 3u);
}

TEST(Csc, MaskRoundTrip)
{
    const BitMask m = randomMask(29, 19, 0.15, 7);
    EXPECT_EQ(Csc::fromMask(m).toMask(), m);
}

TEST(Csc, CooRoundTrip)
{
    const BitMask m = randomMask(11, 21, 0.25, 8);
    const Csc a = Csc::fromMask(m, [](size_t r, size_t c) {
        return static_cast<float>(r + 1000 * c);
    });
    const Csc b = Csc::fromCoo(a.toCoo());
    EXPECT_EQ(b.toMask(), m);
    EXPECT_EQ(a.values(), b.values());
}

TEST(CsrCsc, CrossConversionViaCooAgrees)
{
    const BitMask m = randomMask(31, 31, 0.1, 9);
    Coo coo = Csr::fromMask(m).toCoo();
    coo.sortColMajor();
    const Csc csc = Csc::fromCoo(coo);
    EXPECT_EQ(csc.toMask(), m);
}

TEST(Csc, IndexBytesAccounting)
{
    const BitMask m = randomMask(64, 64, 0.1, 10);
    const Csc csc = Csc::fromMask(m);
    // nnz 1-byte row ids + 2-byte colPtr entries.
    EXPECT_EQ(csc.indexBytes(1), csc.nnz() + (64 + 1) * 2);
    EXPECT_EQ(csc.indexBytes(2), 2 * csc.nnz() + (64 + 1) * 2);
}

TEST(Coo, SortOrders)
{
    Coo coo;
    coo.rows = 4;
    coo.cols = 4;
    coo.entries = {{3, 1, 1.f}, {0, 2, 2.f}, {3, 0, 3.f}, {0, 0, 4.f}};
    coo.sortRowMajor();
    EXPECT_EQ(coo.entries.front().row, 0u);
    EXPECT_EQ(coo.entries.front().col, 0u);
    EXPECT_EQ(coo.entries.back().row, 3u);
    EXPECT_EQ(coo.entries.back().col, 1u);
    coo.sortColMajor();
    EXPECT_EQ(coo.entries.front().col, 0u);
}

TEST(ProfileMask, DiagonalHeavyMask)
{
    BitMask m(64, 64);
    for (size_t i = 0; i < 64; ++i)
        m.set(i, i, true);
    const MaskProfile p = profileMask(m, 2, 0.5, 8);
    EXPECT_EQ(p.nnz, 64u);
    EXPECT_DOUBLE_EQ(p.diagonalFraction, 1.0);
    EXPECT_EQ(p.denseColumns, 0u);
}

TEST(ProfileMask, DenseColumnsDetected)
{
    BitMask m(32, 32);
    for (size_t r = 0; r < 32; ++r) {
        m.set(r, 3, true);
        m.set(r, 17, true);
    }
    const MaskProfile p = profileMask(m, 1, 0.5, 0);
    EXPECT_EQ(p.denseColumns, 2u);
    EXPECT_GT(p.columnCv, 1.0); // extremely imbalanced columns
}

TEST(ProfileMask, FirstBlockDensity)
{
    BitMask m(10, 10);
    for (size_t r = 0; r < 10; ++r)
        for (size_t c = 0; c < 2; ++c)
            m.set(r, c, true);
    const MaskProfile p = profileMask(m, 1, 0.5, 2);
    EXPECT_DOUBLE_EQ(p.firstBlockDensity, 1.0);
}

TEST(ProfileMask, UniformMaskLowCv)
{
    BitMask m(40, 40);
    for (size_t r = 0; r < 40; ++r)
        for (size_t c = 0; c < 40; c += 4)
            m.set(r, c, true);
    const MaskProfile p = profileMask(m, 1, 0.9, 0);
    // Periodic columns: either 40 or 0 nnz; cv reflects that split.
    EXPECT_GT(p.columnCv, 0.0);
    EXPECT_EQ(p.nnz, 400u);
}

} // namespace
} // namespace vitcod::sparse
