/**
 * @file
 * Tests of the bit-packed mask, including randomized equivalence
 * against the byte-per-element BitMask.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparse/packed_mask.h"

namespace vitcod::sparse {
namespace {

BitMask
randomMask(size_t rows, size_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    BitMask m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.uniform() < density)
                m.set(r, c, true);
    return m;
}

TEST(PackedBitMask, SetGetRoundTrip)
{
    PackedBitMask p(3, 130); // crosses word boundaries
    p.set(0, 0, true);
    p.set(1, 63, true);
    p.set(1, 64, true);
    p.set(2, 129, true);
    EXPECT_TRUE(p.get(0, 0));
    EXPECT_TRUE(p.get(1, 63));
    EXPECT_TRUE(p.get(1, 64));
    EXPECT_TRUE(p.get(2, 129));
    EXPECT_FALSE(p.get(0, 1));
    p.set(1, 64, false);
    EXPECT_FALSE(p.get(1, 64));
    EXPECT_EQ(p.nnz(), 3u);
}

TEST(PackedBitMask, EquivalentToBitMaskRandomized)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        const BitMask m = randomMask(37, 197, 0.17, seed);
        const PackedBitMask p = PackedBitMask::fromMask(m);
        EXPECT_EQ(p.nnz(), m.nnz());
        for (size_t r = 0; r < m.rows(); ++r)
            EXPECT_EQ(p.nnzInRow(r), m.nnzInRow(r));
        EXPECT_EQ(p.toMask(), m);
    }
}

TEST(PackedBitMask, PackingSavesOverSixX)
{
    const BitMask m = randomMask(197, 197, 0.1, 9);
    const PackedBitMask p = PackedBitMask::fromMask(m);
    // 197 cols -> 4 words/row -> 32 bytes/row (word padding costs
    // ~23%, so the byte-mask saving is ~6.2x rather than 8x).
    EXPECT_EQ(p.storageBytes(), 197u * 4u * 8u);
    EXPECT_LT(p.storageBytes(), 197u * 197u / 6u);
}

TEST(PackedBitMask, LogicalOpsMatchBitMask)
{
    const BitMask a = randomMask(21, 90, 0.3, 11);
    const BitMask b = randomMask(21, 90, 0.3, 12);
    const PackedBitMask pa = PackedBitMask::fromMask(a);
    const PackedBitMask pb = PackedBitMask::fromMask(b);
    EXPECT_EQ((pa & pb).toMask(), (a & b));
    EXPECT_EQ((pa | pb).toMask(), (a | b));
}

TEST(PackedBitMask, PaddingBitsStayClear)
{
    // Writing only valid columns must leave padding zero so nnz by
    // popcount stays exact.
    PackedBitMask p(2, 65);
    for (size_t c = 0; c < 65; ++c)
        p.set(0, c, true);
    EXPECT_EQ(p.nnz(), 65u);
    EXPECT_EQ(p.nnzInRow(0), 65u);
    EXPECT_EQ(p.nnzInRow(1), 0u);
}

TEST(PackedBitMaskDeath, OutOfRangePanics)
{
    PackedBitMask p(4, 4);
    EXPECT_DEATH(p.get(4, 0), "out of range");
    EXPECT_DEATH(p.set(0, 4, true), "out of range");
}

} // namespace
} // namespace vitcod::sparse
