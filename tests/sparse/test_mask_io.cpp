/**
 * @file
 * Tests of PBM mask import/export: format round-trips, header
 * parsing (comments, whitespace), byte-boundary shapes and file
 * paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "sparse/mask_io.h"
#include "support/temp_path.h"

namespace vitcod::sparse {
namespace {

BitMask
randomMask(size_t rows, size_t cols, double density, uint64_t seed)
{
    Rng rng(seed);
    BitMask m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.uniform() < density)
                m.set(r, c, true);
    return m;
}

TEST(MaskIo, AsciiRoundTrip)
{
    const BitMask m = randomMask(13, 21, 0.3, 1);
    std::stringstream ss;
    writePbm(ss, m, PbmFormat::Ascii);
    EXPECT_EQ(readPbm(ss), m);
}

TEST(MaskIo, BinaryRoundTrip)
{
    const BitMask m = randomMask(197, 197, 0.1, 2);
    std::stringstream ss;
    writePbm(ss, m, PbmFormat::Binary);
    EXPECT_EQ(readPbm(ss), m);
}

TEST(MaskIo, BinaryRoundTripNonByteAlignedWidths)
{
    for (size_t cols : {1u, 7u, 8u, 9u, 63u, 65u}) {
        const BitMask m = randomMask(5, cols, 0.5, 100 + cols);
        std::stringstream ss;
        writePbm(ss, m, PbmFormat::Binary);
        EXPECT_EQ(readPbm(ss), m) << "cols=" << cols;
    }
}

TEST(MaskIo, AsciiOutputIsValidP1Text)
{
    BitMask m(2, 3);
    m.set(0, 1, true);
    m.set(1, 2, true);
    std::stringstream ss;
    writePbm(ss, m, PbmFormat::Ascii);
    const std::string out = ss.str();
    EXPECT_EQ(out.rfind("P1", 0), 0u);
    EXPECT_NE(out.find("3 2"), std::string::npos);
    EXPECT_NE(out.find("0 1 0"), std::string::npos);
}

TEST(MaskIo, ParserSkipsCommentsAndWhitespace)
{
    std::stringstream ss(
        "P1\n# a comment\n  # another\n 3\n# mid\n2\n1 0 1\n0 1 0\n");
    const BitMask m = readPbm(ss);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_TRUE(m.get(0, 0));
    EXPECT_FALSE(m.get(0, 1));
    EXPECT_TRUE(m.get(1, 1));
}

TEST(MaskIo, FileRoundTrip)
{
    const BitMask m = randomMask(31, 47, 0.2, 3);
    const std::string path = test::uniqueTempPath("mask.pbm");
    writePbmFile(path, m);
    EXPECT_EQ(readPbmFile(path), m);
    std::remove(path.c_str());
}

TEST(MaskIoDeath, BadMagicPanics)
{
    std::stringstream ss("P5\n2 2\n");
    EXPECT_DEATH(readPbm(ss), "not a PBM");
}

TEST(MaskIoDeath, TruncatedBinaryPanics)
{
    std::stringstream ss;
    ss << "P4\n16 4\n" << 'x'; // far too few payload bytes
    EXPECT_DEATH(readPbm(ss), "truncated");
}

} // namespace
} // namespace vitcod::sparse
