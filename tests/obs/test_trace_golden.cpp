/**
 * @file
 * Golden fixture for the trace exporter's JSON: a pinned sequence
 * of spans, flows, counters and instants is recorded against the
 * injectable fake clock (TraceConfig::clockMicros), so the exported
 * Chrome trace_event JSON is bit-deterministic and diffable.
 *
 * Lives in its own test binary: the exporter serializes every
 * recorder the process ever registered, so sharing a binary with
 * multi-threaded tracer tests would leak their thread tracks into
 * this fixture.
 *
 * Regenerate after an intentional format change with
 *
 *     obs_test_trace_golden --update-goldens
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"

namespace vitcod::obs {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

constexpr const char *kTraceGolden = "obs_trace.golden.json";

/** Deterministic clock: advances 100 µs per reading. */
int64_t
fakeClock()
{
    static int64_t t = 0;
    return t += 100;
}

std::string
recordFixture()
{
    TraceSession &s = TraceSession::instance();
    s.stop();
    TraceConfig cfg;
    cfg.ringCapacity = 1 << 10;
    cfg.clockMicros = fakeClock;
    s.start(cfg);

    s.setThreadName("golden-main");
    flowStart("request", 1, "serve");
    {
        SpanGuard batch("batch", "serve", "size", 2.0);
        batch.tick(1234);
        flowStep("request", 1, "serve");
        {
            VITCOD_TRACE_SPAN("sddmm", "engine", "nnz", 96.0, "rows",
                              32.0);
        }
        {
            VITCOD_TRACE_SPAN("spmm", "engine", "nnz", 96.0);
        }
    }
    flowEnd("request", 1, "serve");
    counterEvent("queue_depth", 3.0, "serve");
    instant("drain", "serve");

    s.stop();
    std::ostringstream oss;
    s.writeJson(oss);
    return oss.str();
}

TEST(TraceGolden, JsonMatchesCheckedInFixture)
{
    const std::string json = recordFixture();
    const std::string path = dataDir() + kTraceGolden;

    if (g_update_goldens) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << json;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (generate with --update-goldens)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(json, buf.str())
        << "trace JSON diverged from " << path
        << " (regenerate with --update-goldens if intentional)";
}

} // namespace
} // namespace vitcod::obs

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::obs::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
