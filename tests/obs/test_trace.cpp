/**
 * @file
 * TraceSession mechanics: disabled-path inertness, ring-buffer
 * wraparound with dropped-event accounting, concurrent lock-free
 * recording (run under TSan in CI), string interning, span
 * argument capture and export preconditions.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace vitcod::obs {
namespace {

/** Fresh session state for one test (the session is process-wide). */
void
restart(size_t ring_capacity = 1 << 12)
{
    TraceSession &s = TraceSession::instance();
    s.stop();
    TraceConfig cfg;
    cfg.ringCapacity = ring_capacity;
    s.start(cfg);
}

std::string
exportJson()
{
    TraceSession &s = TraceSession::instance();
    s.stop();
    std::ostringstream oss;
    s.writeJson(oss);
    return oss.str();
}

TEST(Trace, DisabledGuardsRecordNothing)
{
    TraceSession &s = TraceSession::instance();
    s.stop();
    restart();
    s.stop();

    {
        VITCOD_TRACE_SPAN("noop", "test");
        instant("noop_instant", "test");
        counterEvent("noop_counter", 1.0, "test");
        flowStart("noop_flow", 7, "test");
    }
    EXPECT_EQ(s.bufferedEvents(), 0u);
    EXPECT_FALSE(SpanGuard("x").live());
}

TEST(Trace, SpanRecordsCompleteEventWithArgs)
{
    restart();
    {
        VITCOD_TRACE_SPAN("work", "test", "nnz", 128.0);
    }
    TraceSession &s = TraceSession::instance();
    EXPECT_EQ(s.bufferedEvents(), 1u);

    const std::string json = exportJson();
    EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"test\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"nnz\": 128"), std::string::npos);
}

TEST(Trace, SpanTickCarriesSimClockDomain)
{
    restart();
    {
        SpanGuard span("batch", "test");
        span.tick(4242);
    }
    const std::string json = exportJson();
    EXPECT_NE(json.find("\"tick\": 4242"), std::string::npos);
}

TEST(Trace, FlowEventsCarryIdAndBindingPoint)
{
    restart();
    flowStart("request", 99, "test");
    flowStep("request", 99, "test");
    flowEnd("request", 99, "test");

    const std::string json = exportJson();
    EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
    EXPECT_NE(json.find("\"id\": 99"), std::string::npos);
    // Flow ends bind to the enclosing slice's end.
    EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
}

TEST(Trace, RingWrapsAndCountsDropped)
{
    // The configured capacity floor is 16.
    restart(/*ring_capacity=*/16);
    for (int i = 0; i < 40; ++i)
        instant("tick", "test");

    TraceSession &s = TraceSession::instance();
    EXPECT_EQ(s.bufferedEvents(), 16u);
    EXPECT_EQ(s.droppedEvents(), 24u);

    s.stop();
    std::ostringstream oss;
    const TraceExportStats stats = s.writeJson(oss);
    EXPECT_EQ(stats.events, 16u);
    EXPECT_EQ(stats.dropped, 24u);
    EXPECT_NE(oss.str().find("\"dropped\": 24"), std::string::npos);
}

TEST(Trace, StartClearsPreviousRun)
{
    restart();
    instant("old", "test");
    ASSERT_GE(TraceSession::instance().bufferedEvents(), 1u);

    restart();
    EXPECT_EQ(TraceSession::instance().bufferedEvents(), 0u);
    const std::string json = exportJson();
    EXPECT_EQ(json.find("\"name\": \"old\""), std::string::npos);
}

TEST(Trace, InternedNamesAreStableAndDeduplicated)
{
    TraceSession &s = TraceSession::instance();
    const std::string dynamic = "plan/DeiT-Small/0.9";
    const char *a = s.intern(dynamic);
    const char *b = s.intern(std::string(dynamic));
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, dynamic.c_str());
}

TEST(Trace, ConcurrentRecordersAreIndependentAndLossAccounted)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 10000;
    restart(/*ring_capacity=*/1 << 8);

    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            TraceSession::instance().setThreadName(
                "rec-" + std::to_string(t));
            for (size_t i = 0; i < kPerThread; ++i) {
                VITCOD_TRACE_SPAN("spin", "test", "i", double(i));
            }
        });
    for (auto &th : threads)
        th.join();

    TraceSession &s = TraceSession::instance();
    s.stop();
    std::ostringstream oss;
    const TraceExportStats stats = s.writeJson(oss);
    // Every recorded event is either exported or counted dropped.
    EXPECT_EQ(stats.events + stats.dropped, kThreads * kPerThread);
    EXPECT_NE(oss.str().find("rec-0"), std::string::npos);
}

TEST(Trace, StopWhileRecordingLosesNothingUnexpected)
{
    restart(/*ring_capacity=*/1 << 12);
    std::atomic<bool> go{true};
    std::atomic<size_t> recorded{0};
    std::thread writer([&] {
        while (go.load(std::memory_order_relaxed)) {
            instant("race", "test");
            recorded.fetch_add(1, std::memory_order_relaxed);
        }
    });
    while (recorded.load(std::memory_order_relaxed) < 100)
        std::this_thread::yield();
    TraceSession::instance().stop(); // while the writer is hot
    go.store(false, std::memory_order_relaxed);
    writer.join();

    std::ostringstream oss;
    const TraceExportStats stats =
        TraceSession::instance().writeJson(oss);
    // The writer kept attempting after stop(); only pre-stop events
    // may appear, and none may be double-counted.
    EXPECT_LE(stats.events + stats.dropped, recorded.load());
    EXPECT_GE(stats.events, 100u);
}

TEST(Trace, ThreadNameMetadataLabelsTracks)
{
    restart();
    TraceSession::instance().setThreadName("main-test-thread");
    instant("hello", "test");
    const std::string json = exportJson();
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("main-test-thread"), std::string::npos);
}

} // namespace
} // namespace vitcod::obs
