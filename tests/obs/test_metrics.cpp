/**
 * @file
 * Metrics registry: counter/gauge/histogram semantics, log-bucket
 * geometry, quantile estimation, merge associativity/commutativity,
 * concurrent observation (run under TSan in CI), and golden
 * fixtures for the Prometheus text exposition and JSON snapshot.
 *
 * Regenerate the exposition goldens after an intentional format
 * change with
 *
 *     obs_test_metrics --update-goldens
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace vitcod::obs {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

TEST(Metrics, CounterAndGaugeBasics)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("test_total");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    // Re-registration returns the same handle.
    EXPECT_EQ(&reg.counter("test_total"), &c);

    Gauge &g = reg.gauge("test_gauge");
    g.set(2.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Metrics, BucketGridIsFixedAndMonotonic)
{
    // Bucket index is a pure function of the value: independent of
    // any histogram instance, so shards always merge bucket-wise.
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(-1.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(Histogram::kMinValue / 2), 0u);

    double prev = 0.0;
    for (size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
        const double ub = Histogram::bucketUpperBound(i);
        EXPECT_GT(ub, prev);
        prev = ub;
    }
    EXPECT_TRUE(std::isinf(
        Histogram::bucketUpperBound(Histogram::kBuckets - 1)));

    // A value lands in the bucket whose (lower, upper] range holds
    // it: bucketUpperBound(bucketOf(v)) >= v > the previous bound.
    for (double v : {1e-6, 1e-3, 0.5, 1.0, 123.0, 7e8}) {
        const size_t b = Histogram::bucketOf(v);
        EXPECT_GE(Histogram::bucketUpperBound(b), v);
        if (b > 1)
            EXPECT_LT(Histogram::bucketUpperBound(b - 1), v);
    }
}

TEST(Metrics, HistogramObservationsAndQuantiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.observe(i * 1e-3); // 1 ms .. 100 ms

    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.sum, 5.050, 1e-9);
    EXPECT_DOUBLE_EQ(s.min, 1e-3);
    EXPECT_DOUBLE_EQ(s.max, 0.1);
    EXPECT_NEAR(s.mean(), 0.0505, 1e-9);

    // Log-bucketed quantiles are upper-bound estimates with relative
    // error bounded by the bucket ratio (2^(1/4) - 1 ~ 19%).
    EXPECT_NEAR(s.quantile(0.5), 0.050, 0.050 * 0.2);
    EXPECT_NEAR(s.quantile(0.99), 0.099, 0.099 * 0.2);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), s.min);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), s.max);
    // Estimates never exceed the observed max.
    EXPECT_LE(s.quantile(0.999), s.max);
}

TEST(Metrics, EmptyHistogramSnapshotIsZero)
{
    const Histogram::Snapshot s = Histogram().snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

Histogram::Snapshot
snapshotOf(const std::vector<double> &values)
{
    Histogram h;
    for (double v : values)
        h.observe(v);
    return h.snapshot();
}

void
expectEqual(const Histogram::Snapshot &a, const Histogram::Snapshot &b)
{
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.sum, b.sum);
    EXPECT_DOUBLE_EQ(a.min, b.min);
    EXPECT_DOUBLE_EQ(a.max, b.max);
}

TEST(Metrics, MergeIsAssociativeAndCommutative)
{
    const auto a = snapshotOf({1e-4, 2e-4, 5.0});
    const auto b = snapshotOf({3e-3, 0.5});
    const auto c = snapshotOf({1e-6, 40.0, 41.0, 42.0});

    expectEqual(a.merged(b).merged(c), a.merged(b.merged(c)));
    expectEqual(a.merged(b), b.merged(a));

    // Merging equals observing the union stream directly.
    const auto direct =
        snapshotOf({1e-4, 2e-4, 5.0, 3e-3, 0.5, 1e-6, 40.0, 41.0,
                    42.0});
    expectEqual(a.merged(b).merged(c), direct);

    // Identity: merging an empty snapshot changes nothing.
    expectEqual(a.merged(Histogram::Snapshot{}), a);
    expectEqual(Histogram::Snapshot{}.merged(a), a);
}

TEST(Metrics, ConcurrentObservationLosesNothing)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("concurrent_total");
    Histogram &h = reg.histogram("concurrent_seconds");

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(1e-6 * static_cast<double>(t + 1));
            }
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(c.value(), kThreads * kPerThread);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, kThreads * kPerThread);
    EXPECT_DOUBLE_EQ(s.min, 1e-6);
    EXPECT_DOUBLE_EQ(s.max, 4e-6);
}

TEST(Metrics, SnapshotListsEverythingSorted)
{
    MetricsRegistry reg;
    reg.counter("b_total").inc(2);
    reg.counter("a_total").inc(1);
    reg.gauge("depth").set(7.0);
    reg.histogram("lat_seconds").observe(0.25);

    const MetricsSnapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.size(), 2u);
    EXPECT_EQ(s.counters[0].name, "a_total");
    EXPECT_EQ(s.counters[1].name, "b_total");
    EXPECT_EQ(s.counters[1].value, 2u);
    ASSERT_EQ(s.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(s.gauges[0].value, 7.0);
    ASSERT_EQ(s.histograms.size(), 1u);
    EXPECT_EQ(s.histograms[0].hist.count, 1u);
}

TEST(Metrics, GlobalRegistryIsOneInstance)
{
    EXPECT_EQ(&metrics(), &MetricsRegistry::global());
    Counter &c =
        metrics().counter("obs_test_global_total", "test counter");
    c.inc();
    EXPECT_GE(c.value(), 1u);
}

/** Pinned registry for the exposition goldens. */
void
fillFixture(MetricsRegistry &reg)
{
    reg.counter("vitcod_requests_total", "Requests admitted").inc(42);
    reg.gauge("vitcod_queue_depth", "Scheduler queue depth").set(3.5);
    Histogram &h = reg.histogram("vitcod_latency_seconds",
                                 "Request wall latency");
    for (double v : {1e-3, 2e-3, 4e-3, 8e-3, 0.5})
        h.observe(v);
}

void
compareGolden(const std::string &got, const char *name)
{
    const std::string path = dataDir() + name;
    if (g_update_goldens) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << got;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (generate with --update-goldens)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(got, buf.str())
        << "exposition diverged from " << path
        << " (regenerate with --update-goldens if intentional)";
}

TEST(MetricsGolden, PrometheusExposition)
{
    MetricsRegistry reg;
    fillFixture(reg);
    std::ostringstream oss;
    reg.writePrometheus(oss);
    compareGolden(oss.str(), "obs_metrics.golden.prom");
}

TEST(MetricsGolden, JsonSnapshot)
{
    MetricsRegistry reg;
    fillFixture(reg);
    std::ostringstream oss;
    reg.writeJson(oss);
    compareGolden(oss.str(), "obs_metrics.golden.json");
}

} // namespace
} // namespace vitcod::obs

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::obs::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
