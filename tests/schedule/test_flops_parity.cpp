/**
 * @file
 * MAC/FLOP/byte parity: `model::modelBreakdown` now derives from the
 * Schedule IR's canonical per-block formulas
 * (core::schedule::blockBreakdown); these tests pin its outputs to
 * the exact values the pre-refactor closed forms produced for the
 * DeiT shapes, and hold the IR's MAC counts (blockMacs) consistent
 * with the FLOP accounting. Any drift here means the single-copy
 * formulas changed — which must be an intentional, visible decision.
 */

#include <gtest/gtest.h>

#include "core/schedule/workload.h"
#include "model/flops.h"

namespace vitcod::core::schedule {
namespace {

using model::Breakdown;
using model::groupOf;
using model::OpGroup;

/** Pre-refactor totals, captured from the old flops.cpp closed
 *  forms at sparsity 0, elem_bytes 2. */
struct Pinned
{
    const char *name;
    double totalFlops;
    double totalBytes;
    double attnFlops;
    double mlpFlops;
    double attnMatMulFlops;
};

constexpr Pinned kPinned[] = {
    {"DeiT-Tiny", 2533326228.0, 74444832.0, 1061821332.0,
     1408868352.0, 357663744.0},
    {"DeiT-Small", 9249684264.0, 170123328.0, 3517986600.0,
     5606424576.0, 715327488.0},
    {"DeiT-Base", 35231495760.0, 425181312.0, 12613348944.0,
     22367600640.0, 1430654976.0},
};

model::VitModelConfig
byName(const std::string &name)
{
    return model::modelByName(name);
}

TEST(FlopsParity, DenseBreakdownsMatchPreRefactorValues)
{
    for (const Pinned &p : kPinned) {
        const Breakdown b = model::modelBreakdown(byName(p.name));
        // Dense counts are integral-valued products: both the old
        // and the schedule-derived formulation compute them exactly.
        EXPECT_DOUBLE_EQ(model::totalFlops(b), p.totalFlops)
            << p.name;
        EXPECT_DOUBLE_EQ(model::totalBytes(b), p.totalBytes)
            << p.name;
        EXPECT_DOUBLE_EQ(model::attentionFlops(b), p.attnFlops)
            << p.name;
        EXPECT_DOUBLE_EQ(groupOf(b, OpGroup::Mlp).flops, p.mlpFlops)
            << p.name;
        EXPECT_DOUBLE_EQ(groupOf(b, OpGroup::AttnMatMul).flops,
                         p.attnMatMulFlops)
            << p.name;
    }
}

TEST(FlopsParity, SparseBreakdownsMatchPreRefactorValues)
{
    // At 90% sparsity the surviving-score count is fractional, so
    // the old and new formulations may differ in evaluation order;
    // allow relative 1e-9 (they agreed to ~1e-15 when captured).
    struct SparsePin
    {
        const char *name;
        double attnMatMulFlops;
        double softmaxFlops;
    };
    constexpr SparsePin kSparse[] = {
        {"DeiT-Tiny", 35766374.399999991, 698561.99999999977},
        {"DeiT-Small", 71532748.799999982, 1397123.9999999995},
        {"DeiT-Base", 143065497.59999996, 2794247.9999999991},
    };
    for (const SparsePin &p : kSparse) {
        const Breakdown b =
            model::modelBreakdown(byName(p.name), 0.9);
        EXPECT_NEAR(groupOf(b, OpGroup::AttnMatMul).flops,
                    p.attnMatMulFlops,
                    p.attnMatMulFlops * 1e-9)
            << p.name;
        EXPECT_NEAR(groupOf(b, OpGroup::Softmax).flops,
                    p.softmaxFlops, p.softmaxFlops * 1e-9)
            << p.name;
    }
}

TEST(FlopsParity, BlockMacsAreHalfTheMatmulFlops)
{
    // The IR's MAC counts and the FLOP accounting must describe the
    // same matmuls: 2 FLOPs per MAC, GELU excluded from MACs.
    for (const Pinned &p : kPinned) {
        const auto cfg = byName(p.name);
        for (const auto &s : cfg.stages) {
            const BlockShape shape{s.tokens, s.heads, s.headDim,
                                   s.embedDim, s.mlpRatio};
            const size_t s_elems =
                s.heads * s.tokens * s.tokens; // dense mask
            const BlockMacs macs = blockMacs(shape, s_elems);
            const Breakdown b = blockBreakdown(
                shape, static_cast<double>(s_elems), 2);

            EXPECT_DOUBLE_EQ(
                static_cast<double>(2 * macs.qkv),
                groupOf(b, OpGroup::QkvProj).flops);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(2 * macs.attn),
                groupOf(b, OpGroup::AttnMatMul).flops);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(2 * macs.outProj),
                groupOf(b, OpGroup::OutProj).flops);
            // MLP FLOPs include the GELU's 8 ops/element on top of
            // the two matmuls.
            const double gelu =
                8.0 * static_cast<double>(s.tokens) *
                static_cast<double>(s.mlpRatio * s.embedDim);
            EXPECT_DOUBLE_EQ(
                static_cast<double>(2 * macs.mlp) + gelu,
                groupOf(b, OpGroup::Mlp).flops);
        }
    }
}

TEST(FlopsParity, SparsityOnlyScalesAttentionGroups)
{
    const Breakdown dense = model::modelBreakdown(byName("DeiT-Base"));
    const Breakdown sparse =
        model::modelBreakdown(byName("DeiT-Base"), 0.5);
    EXPECT_DOUBLE_EQ(groupOf(sparse, OpGroup::QkvProj).flops,
                     groupOf(dense, OpGroup::QkvProj).flops);
    EXPECT_DOUBLE_EQ(groupOf(sparse, OpGroup::Mlp).flops,
                     groupOf(dense, OpGroup::Mlp).flops);
    EXPECT_NEAR(groupOf(sparse, OpGroup::AttnMatMul).flops,
                groupOf(dense, OpGroup::AttnMatMul).flops * 0.5,
                1.0);
}

} // namespace
} // namespace vitcod::core::schedule
