/**
 * @file
 * The three-way invariant the Schedule IR exists to guarantee: for
 * a given plan, the MACs the runtime *executes* (ExecTrace), the
 * MACs the analytic simulator *prices* (LayerAttentionStats) and
 * the MACs the compiled *instruction stream* carries must be one
 * and the same number, per layer and in total — because all three
 * consumers read them from the same ModelSchedule. Runs over the
 * golden-fixture model (whose layer-0/head-0 mask is pinned in
 * tests/data/model_exec_mask_l0h0.pbm) and a sweep of shapes,
 * sparsities and AE settings.
 */

#include <gtest/gtest.h>

#include "accel/compiler.h"
#include "common/rng.h"
#include "core/model_exec/model_executor.h"
#include "core/pipeline.h"
#include "sparse/mask_io.h"

namespace vitcod::core::schedule {
namespace {

using model_exec::ExecTrace;
using model_exec::ModelExecutor;
using model_exec::ModelWeights;

struct Case
{
    const char *name;
    size_t layers, heads, tokens, headDim;
    double sparsity;
    bool ae;
};

class ThreeWayMacs : public ::testing::TestWithParam<Case>
{};

/**
 * Per-layer attention MACs of an instruction stream, in both
 * currencies: `priced` is the engine workload (dense ops stream the
 * whole denser region), `executed` the mask-nonzero subset a
 * value-level run computes.
 */
struct ProgramMacs
{
    std::vector<MacOps> priced;
    std::vector<MacOps> executed;
};

ProgramMacs
programAttentionMacs(const accel::Program &prog, size_t layers)
{
    ProgramMacs macs{std::vector<MacOps>(layers, 0),
                     std::vector<MacOps>(layers, 0)};
    for (const accel::Instruction &ins : prog.code) {
        if (ins.layer >= layers)
            continue;
        switch (ins.op) {
          case accel::Opcode::SddmmDense:
          case accel::Opcode::SpmmDense:
            macs.priced[ins.layer] += ins.arg0;
            macs.executed[ins.layer] += ins.arg1;
            break;
          case accel::Opcode::SddmmSparse:
          case accel::Opcode::SpmmSparse:
            macs.priced[ins.layer] += ins.arg1;
            macs.executed[ins.layer] += ins.arg1;
            break;
          default:
            break;
        }
    }
    return macs;
}

TEST_P(ThreeWayMacs, ExecutedEqualsSimulatedEqualsCompiled)
{
    const Case c = GetParam();
    model::VitModelConfig m;
    m.name = c.name;
    m.stages = {{c.layers, c.tokens, c.heads, c.headDim,
                 c.heads * c.headDim, 2}};
    const auto plan = core::buildModelPlan(
        m, core::makePipelineConfig(c.sparsity, c.ae));

    // (1) Executed: a real forward pass through the ModelExecutor.
    Rng rng(2026);
    ModelExecutor exec(&plan, ModelWeights::random(m, 0, 8, rng),
                       model_exec::ExecutorConfig{.numClasses = 8});
    ExecTrace trace;
    (void)exec.forward(
        linalg::Matrix::randomNormal(c.tokens,
                                     m.stages[0].embedDim, rng),
        &trace);

    // (2) Simulated: the analytic accelerator pricing each layer.
    const accel::ViTCoDAccelerator sim;

    // (3) Compiled: the instruction stream's MAC operands.
    const accel::Program prog =
        accel::Compiler().compile(plan, /*e2e=*/false);
    const auto prog_macs =
        programAttentionMacs(prog, m.totalLayers());

    MacOps executed_total = 0;
    ASSERT_EQ(trace.layers.size(), m.totalLayers());
    for (size_t l = 0; l < m.totalLayers(); ++l) {
        // Executed attention MACs from the trace's own per-head
        // record: SDDMM + SpMM at each head's mask nonzeros.
        MacOps executed = 0;
        ASSERT_EQ(trace.layers[l].headTraces.size(), c.heads);
        for (const auto &ht : trace.layers[l].headTraces)
            executed += static_cast<MacOps>(ht.maskNnz) *
                        c.headDim * 2;

        const auto st = sim.simulateAttentionLayer(plan, l);

        // Executed currency, three ways: the runtime's trace, the
        // simulator's value-level count, the instruction stream's
        // nonzero operands.
        EXPECT_EQ(executed, st.executedMacs) << "layer " << l;
        EXPECT_EQ(st.executedMacs, prog_macs.executed[l])
            << "layer " << l;

        // Priced currency, three ways: simulator, instruction
        // stream, schedule.
        EXPECT_EQ(st.attentionMacs, prog_macs.priced[l])
            << "layer " << l;
        EXPECT_EQ(st.attentionMacs,
                  exec.schedule().layers[l].attentionMacs())
            << "layer " << l;

        // The two currencies differ by exactly the denser region's
        // zero padding (dense storage computes every n x N_gt
        // entry; the runtime computes only mask nonzeros).
        MacOps padding = 0;
        for (const auto &hs : exec.schedule().layers[l].heads)
            padding += (static_cast<MacOps>(hs.tokens) *
                            hs.numGlobalTokens -
                        hs.denserNnz) *
                       hs.headDim * 2;
        EXPECT_EQ(st.attentionMacs - st.executedMacs, padding)
            << "layer " << l;

        executed_total += executed;
    }
    EXPECT_GT(executed_total, 0u);

    // The schedule is the common source all three read from.
    EXPECT_EQ(exec.schedule().execMacs(),
              executed_total + [&] {
                  MacOps other = 0;
                  for (const auto &ls : exec.schedule().layers)
                      other += ls.execMacs.qkv + ls.execMacs.outProj +
                               ls.execMacs.mlp;
                  return other;
              }());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreeWayMacs,
    ::testing::Values(
        Case{"golden-tiny", 2, 3, 32, 8, 0.9, false},
        Case{"three-way-a", 2, 3, 48, 8, 0.5, false},
        Case{"three-way-b", 4, 6, 64, 8, 0.8, true},
        Case{"three-way-c", 2, 3, 40, 16, 0.98, true}),
    [](const auto &info) {
        return std::string(info.param.name).substr(
                   std::string(info.param.name).find_last_of('-') +
                   1) +
               "_s" +
               std::to_string(
                   static_cast<int>(info.param.sparsity * 100)) +
               (info.param.ae ? "_ae" : "_noae");
    });

TEST(ThreeWayMacs, GoldenMaskFixtureAgrees)
{
    // The pinned golden mask (layer 0, head 0 of the golden-tiny
    // plan) flows through all three consumers with one nnz count.
    model::VitModelConfig m;
    m.name = "golden-tiny";
    m.stages = {{2, 32, 3, 8, 24, 2}};
    const auto plan =
        core::buildModelPlan(m, core::makePipelineConfig(0.9, false));

    const std::string path =
        std::string(VITCOD_TEST_DATA_DIR) + "/model_exec_mask_l0h0.pbm";
    const sparse::BitMask golden_mask = sparse::readPbmFile(path);
    ASSERT_EQ(plan.planOf(0, 0).mask, golden_mask);

    const ModelSchedule sched =
        ScheduleBuilder().build(plan, /*e2e=*/false);
    EXPECT_EQ(sched.layers[0].heads[0].maskNnz(),
              golden_mask.nnz());
    EXPECT_EQ(sched.layers[0].heads[0].layout.colIdx.size(),
              golden_mask.nnz());
}

} // namespace
} // namespace vitcod::core::schedule
