/**
 * @file
 * Schedule IR tests: builder invariants (the denser/sparser split
 * partitions every mask, allocations respect the array, runtime
 * layouts are well formed), text-serialization round-trips, build
 * determinism, and a golden fixture under tests/data/ pinning the
 * complete schedule of a tiny model — same --update-goldens flow as
 * the ExecTrace goldens:
 *
 *     schedule_test_schedule --update-goldens
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "core/schedule/builder.h"

namespace vitcod::core::schedule {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

constexpr const char *kScheduleGolden = "model_schedule.golden";

model::VitModelConfig
tinyModel()
{
    model::VitModelConfig m;
    m.name = "golden-tiny";
    m.stages = {{2, 32, 3, 8, 24, 2}};
    return m;
}

core::ModelPlan
planFor(const model::VitModelConfig &m, double sparsity, bool ae)
{
    return core::buildModelPlan(
        m, core::makePipelineConfig(sparsity, ae));
}

TEST(ScheduleBuilder, SplitPartitionsEveryMask)
{
    const auto m = tinyModel();
    const auto plan = planFor(m, 0.9, false);
    const ModelSchedule s =
        ScheduleBuilder().build(plan, /*e2e=*/false);

    ASSERT_EQ(s.layers.size(), m.totalLayers());
    for (const LayerSchedule &ls : s.layers) {
        ASSERT_EQ(ls.heads.size(), 3u);
        for (const HeadSchedule &hs : ls.heads) {
            const auto &p = plan.planOf(ls.layer, hs.head);
            // Denser + sparser nonzeros partition the mask, and the
            // runtime layout indexes exactly those nonzeros.
            EXPECT_EQ(hs.maskNnz(), p.mask.nnz());
            EXPECT_EQ(hs.layout.colIdx.size(), hs.maskNnz());
            ASSERT_EQ(hs.layout.rowPtr.size(), hs.tokens + 1);
            EXPECT_EQ(hs.layout.rowPtr.back(), hs.maskNnz());
            if (hs.layout.useCsc) {
                EXPECT_EQ(hs.layout.rowIdx.size(), hs.maskNnz());
                EXPECT_EQ(hs.layout.colPtr.size(), hs.tokens + 1);
            }
            EXPECT_EQ(hs.numGlobalTokens, p.numGlobalTokens);
        }
        // The priced engine workload exceeds the executed mask-nnz
        // MACs by exactly the denser region's zero padding.
        MacOps padding = 0;
        for (const HeadSchedule &hs : ls.heads)
            padding += (static_cast<MacOps>(hs.tokens) *
                            hs.numGlobalTokens -
                        hs.denserNnz) *
                       hs.headDim * 2;
        EXPECT_EQ(ls.attentionMacs(), ls.execMacs.attn + padding);
    }
}

TEST(ScheduleBuilder, LineAllocationRespectsArray)
{
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const ModelSchedule s =
        ScheduleBuilder().build(plan, /*e2e=*/true);
    for (const LayerSchedule &ls : s.layers) {
        EXPECT_LE(ls.sddmmDenserLines + ls.sddmmSparserLines,
                  s.params.macLines);
        EXPECT_LE(ls.spmmDenserLines + ls.spmmSparserLines,
                  s.params.macLines);
        EXPECT_GT(ls.windowRows, 0u);
        if (ls.sparserSddmmMacs > 0) {
            EXPECT_GT(ls.sddmmSparserCycles, 0u);
        }
        // End-to-end build populated the dense block.
        EXPECT_GT(ls.dense.projMacs, 0u);
        EXPECT_GT(ls.dense.lnElems, 0u);
        // AE on: decode work and a compression ratio below 1.
        EXPECT_TRUE(ls.aeOn);
        EXPECT_GT(ls.decodeMacs, 0u);
        EXPECT_LT(ls.aeRatio, 1.0);
    }
}

TEST(ScheduleBuilder, Deterministic)
{
    const auto plan = planFor(tinyModel(), 0.9, false);
    const ScheduleBuilder b;
    const ModelSchedule s1 = b.build(plan, true);
    const ModelSchedule s2 = b.build(plan, true);
    std::string why;
    EXPECT_TRUE(structurallyEqual(s1, s2, &why)) << why;
}

TEST(ScheduleSerialization, RoundTripsEverything)
{
    // AE on + end-to-end + NLP prediction: every field populated.
    BuilderConfig bc;
    bc.hw.dynamicMaskPrediction = true;
    const auto plan = planFor(tinyModel(), 0.9, true);
    const ModelSchedule s =
        ScheduleBuilder(bc).build(plan, /*e2e=*/true);

    std::stringstream ss;
    s.write(ss);
    const ModelSchedule back = ModelSchedule::read(ss);

    std::string why;
    EXPECT_TRUE(structurallyEqual(s, back, &why)) << why;
    EXPECT_EQ(back.modelName, s.modelName);
    EXPECT_EQ(back.params, s.params);
    EXPECT_EQ(back.attentionMacs(), s.attentionMacs());
    EXPECT_EQ(back.execMacs(), s.execMacs());
    ASSERT_EQ(back.layers.size(), s.layers.size());
    EXPECT_GT(back.layers[0].predictMacs, 0u);
    EXPECT_EQ(back.layers[0].heads[0].layout,
              s.layers[0].heads[0].layout);
}

TEST(ScheduleSerialization, RejectsGarbage)
{
    std::stringstream ss("not-a-schedule v1");
    EXPECT_DEATH((void)ModelSchedule::read(ss), "parse error");
}

TEST(ScheduleGolden, MatchesCheckedInFixture)
{
    const auto plan = planFor(tinyModel(), 0.9, false);
    const ModelSchedule s =
        ScheduleBuilder().build(plan, /*e2e=*/true);
    const std::string path = dataDir() + kScheduleGolden;

    if (g_update_goldens)
        s.writeFile(path);

    const ModelSchedule golden = ModelSchedule::readFile(path);
    std::string why;
    EXPECT_TRUE(structurallyEqual(s, golden, &why))
        << "schedule diverged from " << path << ": " << why
        << " (regenerate with --update-goldens if intentional)";
}

TEST(ScheduleBreakdown, MatchesAnalyticOnDenseGroups)
{
    const auto m = model::deitTiny();
    const auto plan = planFor(m, 0.9, false);
    const ModelSchedule s = ScheduleBuilder().build(plan, false);
    const model::Breakdown sched_b = s.breakdown();
    const model::Breakdown analytic = model::modelBreakdown(m);

    // Mask-independent groups agree with the analytic accounting
    // exactly; attention groups reflect the masks' actual nonzeros
    // (about 10% of dense at this operating point).
    EXPECT_DOUBLE_EQ(
        groupOf(sched_b, model::OpGroup::QkvProj).flops,
        groupOf(analytic, model::OpGroup::QkvProj).flops);
    EXPECT_DOUBLE_EQ(groupOf(sched_b, model::OpGroup::Mlp).flops,
                     groupOf(analytic, model::OpGroup::Mlp).flops);
    const double dense_attn =
        groupOf(analytic, model::OpGroup::AttnMatMul).flops;
    const double sched_attn =
        groupOf(sched_b, model::OpGroup::AttnMatMul).flops;
    EXPECT_GT(sched_attn, 0.0);
    EXPECT_LT(sched_attn, 0.2 * dense_attn);
}

TEST(ScheduleMath, LruMissesExactOnKnownPattern)
{
    sparse::BitMask m(8, 8);
    for (size_t i = 0; i < 8; ++i)
        m.set(i, i, true);
    EXPECT_EQ(lruQMisses(sparse::Csc::fromMask(m), 2), 8u);
    EXPECT_EQ(lruQMisses(sparse::Csc::fromMask(m), 0), 8u);
}

} // namespace
} // namespace vitcod::core::schedule

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::core::schedule::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
