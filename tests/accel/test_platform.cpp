/**
 * @file
 * Tests of the CPU/GPU/EdgeGPU platform models.
 */

#include <gtest/gtest.h>

#include "accel/platform.h"
#include "core/pipeline.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
planFor(const model::VitModelConfig &m)
{
    return core::buildModelPlan(
        m, core::makePipelineConfig(m.nominalSparsity, true));
}

TEST(Platform, GpuFasterThanCpuOnAttention)
{
    PlatformModel cpu(cpuXeon6230R());
    PlatformModel gpu(gpu2080Ti());
    const auto plan = planFor(model::deitBase());
    EXPECT_LT(gpu.runAttention(plan).seconds,
              cpu.runAttention(plan).seconds);
}

TEST(Platform, OrderingCpuSlowestGpuFastest)
{
    // Fig. 15 ordering among general platforms.
    PlatformModel cpu(cpuXeon6230R());
    PlatformModel edge(edgeGpuXavierNX());
    PlatformModel gpu(gpu2080Ti());
    const auto plan = planFor(model::deitSmall());
    const double t_cpu = cpu.runAttention(plan).seconds;
    const double t_edge = edge.runAttention(plan).seconds;
    const double t_gpu = gpu.runAttention(plan).seconds;
    EXPECT_GT(t_cpu, t_edge);
    EXPECT_GT(t_edge, t_gpu);
}

TEST(Platform, SparsityDoesNotHelpGeneralPlatforms)
{
    // sparseExploit = 0: a 90%-sparse plan runs at dense speed.
    PlatformModel gpu(gpu2080Ti());
    const auto dense = core::buildModelPlan(
        model::deitSmall(), core::makePipelineConfig(0.5, true));
    const auto sparse = core::buildModelPlan(
        model::deitSmall(), core::makePipelineConfig(0.9, true));
    EXPECT_NEAR(gpu.runAttention(dense).seconds,
                gpu.runAttention(sparse).seconds, 1e-9);
}

TEST(Platform, AttentionDominatesEndToEndLatency)
{
    // The paper's Fig. 4 claim: >50% of measured latency is the
    // self-attention module on the EdgeGPU.
    PlatformModel edge(edgeGpuTx2());
    const auto m = model::levit128();
    double attn = 0.0;
    using model::OpGroup;
    for (OpGroup g : {OpGroup::QkvProj, OpGroup::AttnMatMul,
                      OpGroup::Reshape, OpGroup::Softmax,
                      OpGroup::OutProj})
        attn += edge.opGroupSeconds(m, g);
    double total = attn;
    for (OpGroup g :
         {OpGroup::Mlp, OpGroup::LayerNorm, OpGroup::Other})
        total += edge.opGroupSeconds(m, g);
    EXPECT_GT(attn / total, 0.5);
}

TEST(Platform, MatmulShareOfAttentionSubstantial)
{
    // Fig. 4 bottom: Q.K^T / S.V + reshape occupy up to ~53% of the
    // self-attention latency on the EdgeGPU.
    PlatformModel edge(edgeGpuTx2());
    const auto m = model::deitBase();
    using model::OpGroup;
    const double mm = edge.opGroupSeconds(m, OpGroup::AttnMatMul) +
                      edge.opGroupSeconds(m, OpGroup::Reshape);
    double attn = mm;
    for (OpGroup g :
         {OpGroup::QkvProj, OpGroup::Softmax, OpGroup::OutProj})
        attn += edge.opGroupSeconds(m, g);
    EXPECT_GT(mm / attn, 0.3);
    EXPECT_LT(mm / attn, 0.75);
}

TEST(Platform, DispatchChargedAsPreprocess)
{
    PlatformModel cpu(cpuXeon6230R());
    const auto plan = planFor(model::deitTiny());
    const RunStats rs = cpu.runAttention(plan);
    EXPECT_GT(rs.preprocessSeconds, 0.0);
    EXPECT_NEAR(rs.seconds,
                rs.computeSeconds + rs.dataMoveSeconds +
                    rs.preprocessSeconds,
                1e-12);
}

TEST(Platform, SmallModelsDispatchBound)
{
    // LeViT-128 on CPU: overhead exceeds roofline compute.
    PlatformModel cpu(cpuXeon6230R());
    const auto plan = planFor(model::levit128());
    const RunStats rs = cpu.runAttention(plan);
    EXPECT_GT(rs.preprocessSeconds, rs.computeSeconds);
}

TEST(Platform, EnergyIsPowerTimesTime)
{
    PlatformModel gpu(gpu2080Ti());
    const auto plan = planFor(model::deitBase());
    const RunStats rs = gpu.runEndToEnd(plan);
    EXPECT_NEAR(rs.energyJoules(), 250.0 * rs.seconds,
                1e-6 * rs.energyJoules());
}

TEST(Platform, EndToEndExceedsAttention)
{
    PlatformModel edge(edgeGpuXavierNX());
    const auto plan = planFor(model::deitSmall());
    EXPECT_GT(edge.runEndToEnd(plan).seconds,
              edge.runAttention(plan).seconds);
}

TEST(Platform, PresetsHaveDistinctNames)
{
    EXPECT_EQ(cpuXeon6230R().name, "CPU");
    EXPECT_EQ(gpu2080Ti().name, "GPU");
    EXPECT_EQ(edgeGpuXavierNX().name, "EdgeGPU");
    EXPECT_EQ(edgeGpuTx2().name, "EdgeGPU-TX2");
}

} // namespace
} // namespace vitcod::accel
