/**
 * @file
 * Tests of the rebuilt SpAtten and Sanger baseline simulators.
 */

#include <gtest/gtest.h>

#include "accel/sanger.h"
#include "accel/spatten.h"
#include "core/pipeline.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
planFor(const model::VitModelConfig &m, double sparsity = 0.9)
{
    return core::buildModelPlan(m,
                                core::makePipelineConfig(sparsity, true));
}

TEST(SpAtten, CascadeKeepRatioDecreasesWithDepth)
{
    SpAttenAccelerator acc;
    EXPECT_DOUBLE_EQ(acc.tokenKeepAt(0, 12), 1.0);
    EXPECT_GT(acc.tokenKeepAt(5, 12), acc.tokenKeepAt(11, 12));
    EXPECT_NEAR(acc.tokenKeepAt(11, 12),
                acc.config().tokenKeepFinal, 1e-12);
}

TEST(SpAtten, SingleLayerModelUsesFinalKeep)
{
    SpAttenAccelerator acc;
    EXPECT_DOUBLE_EQ(acc.tokenKeepAt(0, 1),
                     acc.config().tokenKeepFinal);
}

TEST(SpAtten, MorePruningFaster)
{
    SpAttenConfig aggressive;
    aggressive.tokenKeepFinal = 0.5;
    SpAttenAccelerator fast(aggressive);
    SpAttenAccelerator slow;
    const auto plan = planFor(model::deitBase());
    EXPECT_LT(fast.runAttention(plan).cycles,
              slow.runAttention(plan).cycles);
}

TEST(SpAtten, PreprocessTimeIsTopK)
{
    SpAttenAccelerator acc;
    const auto plan = planFor(model::deitSmall());
    const RunStats rs = acc.runAttention(plan);
    EXPECT_GT(rs.preprocessSeconds, 0.0);
    EXPECT_LT(rs.preprocessSeconds, rs.seconds);
}

TEST(SpAtten, TokenPruningSpeedsUpEndToEndToo)
{
    SpAttenConfig aggressive;
    aggressive.tokenKeepFinal = 0.5;
    SpAttenAccelerator fast(aggressive);
    SpAttenAccelerator slow;
    const auto plan = planFor(model::deitSmall());
    EXPECT_LT(fast.runEndToEnd(plan).cycles,
              slow.runEndToEnd(plan).cycles);
}

TEST(Sanger, PredictionChargedAsPreprocess)
{
    SangerAccelerator acc;
    const auto plan = planFor(model::deitBase());
    const RunStats rs = acc.runAttention(plan);
    EXPECT_GT(rs.preprocessSeconds, 0.0);
    // Prediction pass is a quarter-cost full QK^T: a visible but
    // non-dominant share.
    EXPECT_LT(rs.preprocessSeconds, 0.6 * rs.seconds);
}

TEST(Sanger, HigherOperatingSparsityFasterAttention)
{
    SangerConfig sparse_cfg;
    sparse_cfg.operatingSparsity = 0.8;
    SangerConfig dense_cfg;
    dense_cfg.operatingSparsity = 0.3;
    SangerAccelerator sparse_acc(sparse_cfg);
    SangerAccelerator dense_acc(dense_cfg);
    const auto plan = planFor(model::deitBase());
    EXPECT_LT(sparse_acc.runAttention(plan).cycles,
              dense_acc.runAttention(plan).cycles);
}

TEST(Sanger, PackEfficiencyMatters)
{
    SangerConfig good;
    good.packEfficiency = 0.95;
    SangerConfig bad;
    bad.packEfficiency = 0.4;
    SangerAccelerator fast(good);
    SangerAccelerator slow(bad);
    const auto plan = planFor(model::deitSmall());
    EXPECT_LT(fast.runAttention(plan).cycles,
              slow.runAttention(plan).cycles);
}

TEST(Sanger, SStationaryLoadsQkOnce)
{
    // Sanger's attention-phase DRAM read should be close to one full
    // Q+K+V pass per layer (plus masks) — its dataflow's strength.
    SangerAccelerator acc;
    const auto m = model::deitBase();
    const auto plan = planFor(m);
    const RunStats rs = acc.runAttention(plan);
    const double qkv_once =
        12.0 * 3.0 * 197.0 * 768.0 * 2.0; // bytes, fp16-class
    EXPECT_LT(static_cast<double>(rs.dramRead), 2.0 * qkv_once);
}

TEST(Baselines, BothSlowerEndToEndThanAttentionOnly)
{
    const auto plan = planFor(model::deitTiny());
    SpAttenAccelerator sp;
    SangerAccelerator sa;
    EXPECT_GT(sp.runEndToEnd(plan).cycles,
              sp.runAttention(plan).cycles);
    EXPECT_GT(sa.runEndToEnd(plan).cycles,
              sa.runAttention(plan).cycles);
}

TEST(Baselines, DecompositionSumsToTotal)
{
    const auto plan = planFor(model::levit128(), 0.8);
    SpAttenAccelerator sp;
    SangerAccelerator sa;
    for (RunStats rs :
         {sp.runAttention(plan), sa.runAttention(plan)}) {
        EXPECT_NEAR(rs.seconds,
                    rs.computeSeconds + rs.dataMoveSeconds +
                        rs.preprocessSeconds,
                    1e-12);
    }
}

TEST(Baselines, UtilizationInUnitRange)
{
    const auto plan = planFor(model::deitBase());
    SpAttenAccelerator sp;
    SangerAccelerator sa;
    for (RunStats rs :
         {sp.runAttention(plan), sa.runAttention(plan)}) {
        EXPECT_GT(rs.utilization, 0.0);
        EXPECT_LE(rs.utilization, 1.0);
    }
}

} // namespace
} // namespace vitcod::accel
