/**
 * @file
 * Tests of the shared dense-block phase model used by the baseline
 * accelerators' end-to-end runs.
 */

#include <gtest/gtest.h>

#include "accel/dense_phases.h"

namespace vitcod::accel {
namespace {

model::AttnShape
deitBaseShape()
{
    return {197, 12, 64, 768, 0};
}

DensePhaseParams
defaults()
{
    DensePhaseParams p;
    p.totalMacs = 512;
    p.gemmEff = 0.9;
    p.elemBytes = 2;
    return p;
}

TEST(DensePhases, MacCountMatchesAnalyticFormula)
{
    const sim::DramModel dram;
    const auto st =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    const double n = 197, d = 768, hd = 768, hidden = 4.0 * 768;
    const double expect =
        n * d * 3.0 * hd + n * hd * d + 2.0 * n * d * hidden;
    EXPECT_NEAR(static_cast<double>(st.macs), expect, 1.0);
}

TEST(DensePhases, ComputeBoundForBigGemms)
{
    const sim::DramModel dram;
    const auto st =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    // MLP-dominated blocks on 512 MACs: total close to compute.
    EXPECT_GT(static_cast<double>(st.compute),
              0.8 * static_cast<double>(st.total));
}

TEST(DensePhases, TokenKeepShrinksWork)
{
    const sim::DramModel dram;
    DensePhaseParams half = defaults();
    half.tokenKeep = 0.5;
    const auto full =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    const auto pruned =
        simulateDenseBlock(deitBaseShape(), 4, dram, half);
    EXPECT_LT(pruned.macs, full.macs);
    EXPECT_LT(pruned.total, full.total);
    EXPECT_NEAR(static_cast<double>(pruned.macs),
                0.5 * static_cast<double>(full.macs),
                0.01 * static_cast<double>(full.macs));
}

TEST(DensePhases, MlpRatioScalesMlpTerm)
{
    const sim::DramModel dram;
    const auto r2 =
        simulateDenseBlock(deitBaseShape(), 2, dram, defaults());
    const auto r4 =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    EXPECT_GT(r4.macs, r2.macs);
    EXPECT_GT(r4.total, r2.total);
}

TEST(DensePhases, TrafficIncludesWeights)
{
    const sim::DramModel dram;
    const auto st =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    // QKV + out-proj + MLP weights alone: (3+1+8) * 768^2 * 2 bytes.
    const double weight_bytes = 12.0 * 768.0 * 768.0 * 2.0;
    EXPECT_GT(static_cast<double>(st.dramRead), weight_bytes);
}

TEST(DensePhases, MlpRatioOfLayerResolvesStages)
{
    const auto m = model::levit128(); // all stages ratio 2
    EXPECT_EQ(mlpRatioOfLayer(m, 0), 2u);
    EXPECT_EQ(mlpRatioOfLayer(m, 11), 2u);
    const auto d = model::deitBase();
    EXPECT_EQ(mlpRatioOfLayer(d, 5), 4u);
}

TEST(DensePhasesDeath, LayerOutOfRangePanics)
{
    const auto m = model::deitTiny();
    EXPECT_DEATH(mlpRatioOfLayer(m, 12), "out of range");
}

TEST(DensePhases, MoreMacsFewerCycles)
{
    const sim::DramModel dram;
    DensePhaseParams big = defaults();
    big.totalMacs = 4096;
    const auto small =
        simulateDenseBlock(deitBaseShape(), 4, dram, defaults());
    const auto large =
        simulateDenseBlock(deitBaseShape(), 4, dram, big);
    EXPECT_LT(large.compute, small.compute);
}

} // namespace
} // namespace vitcod::accel
