/**
 * @file
 * Tests of the Table I taxonomy data.
 */

#include <gtest/gtest.h>

#include "accel/taxonomy.h"

namespace vitcod::accel {
namespace {

TEST(Taxonomy, SevenRows)
{
    EXPECT_EQ(taxonomyTable().size(), 7u);
}

TEST(Taxonomy, ViTCoDRowMatchesPaper)
{
    const auto rows = taxonomyTable();
    const auto &v = rows.back();
    EXPECT_EQ(v.name, "ViTCoD (Ours)");
    EXPECT_EQ(v.applicationField, "ViT");
    EXPECT_EQ(v.sparsityPattern, "Static");
    EXPECT_EQ(v.patternRegularity, "Denser & Sparser");
    EXPECT_EQ(v.offChipTraffic, "Low");
    EXPECT_EQ(v.bandwidthRequirement, "Low");
    EXPECT_TRUE(v.algoHwCoDesign);
}

TEST(Taxonomy, NlpBaselinesAreDynamic)
{
    for (const auto &row : taxonomyTable()) {
        if (row.name == "SpAtten" || row.name == "Sanger") {
            EXPECT_EQ(row.sparsityPattern, "Dynamic & Input-dependent")
                << row.name;
            EXPECT_TRUE(row.algoHwCoDesign) << row.name;
        }
    }
}

TEST(Taxonomy, TensorAlgebraRowsAreSpGemm)
{
    size_t spgemm = 0;
    for (const auto &row : taxonomyTable())
        if (row.workloads == "SpGEMM")
            ++spgemm;
    EXPECT_EQ(spgemm, 4u); // OuterSpace, ExTensor, SpArch, Gamma
}

TEST(Taxonomy, AllNamesUnique)
{
    const auto rows = taxonomyTable();
    for (size_t i = 0; i < rows.size(); ++i)
        for (size_t j = i + 1; j < rows.size(); ++j)
            EXPECT_NE(rows[i].name, rows[j].name);
}

} // namespace
} // namespace vitcod::accel
