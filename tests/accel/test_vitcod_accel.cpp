/**
 * @file
 * Tests of the ViTCoD accelerator simulator: monotonicity in
 * sparsity, AE traffic savings, two-pronged allocation, Q-gather
 * modeling and bookkeeping invariants.
 */

#include <gtest/gtest.h>

#include "accel/vitcod_accel.h"
#include "core/pipeline.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
planFor(const model::VitModelConfig &m, double sparsity, bool ae)
{
    return core::buildModelPlan(m,
                                core::makePipelineConfig(sparsity, ae));
}

TEST(ViTCoDAccel, AttentionLatencyMonotoneInSparsity)
{
    ViTCoDAccelerator acc;
    const auto lo = planFor(model::deitTiny(), 0.6, true);
    const auto hi = planFor(model::deitTiny(), 0.9, true);
    EXPECT_GT(acc.runAttention(lo).cycles,
              acc.runAttention(hi).cycles);
}

TEST(ViTCoDAccel, AeReducesDramTraffic)
{
    const auto with_ae = planFor(model::deitSmall(), 0.9, true);
    const auto without = planFor(model::deitSmall(), 0.9, false);
    ViTCoDAccelerator acc;
    const RunStats a = acc.runAttention(with_ae);
    const RunStats b = acc.runAttention(without);
    EXPECT_LT(a.dramRead, b.dramRead);
}

TEST(ViTCoDAccel, AeImprovesLatencyWhenBandwidthStarved)
{
    // Under an edge-class DRAM (1/6 of the paper's bandwidth) the
    // attention phases are traffic-bound, and halving Q/K movement
    // must win outright.
    ViTCoDConfig cfg;
    cfg.dram.bandwidthGBps = 12.8;
    ViTCoDAccelerator acc(cfg);
    const auto with_ae = planFor(model::deitBase(), 0.9, true);
    const auto without = planFor(model::deitBase(), 0.9, false);
    EXPECT_LT(acc.runAttention(with_ae).cycles,
              acc.runAttention(without).cycles);
}

TEST(ViTCoDAccel, AeNearNeutralAtFullBandwidth)
{
    // At the paper's 76.8 GB/s the 90% operating point is compute-
    // bound in this reproduction: the AE may cost a little latency
    // (decode engine) but must stay within 10%.
    ViTCoDAccelerator acc;
    const auto with_ae = planFor(model::deitBase(), 0.9, true);
    const auto without = planFor(model::deitBase(), 0.9, false);
    const double a =
        static_cast<double>(acc.runAttention(with_ae).cycles);
    const double b =
        static_cast<double>(acc.runAttention(without).cycles);
    EXPECT_LT(a, 1.10 * b);
}

TEST(ViTCoDAccel, LayerStatsSumConsistency)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const LayerAttentionStats st = acc.simulateAttentionLayer(plan, 0);
    EXPECT_EQ(st.total, st.sddmmCompute + st.softmaxCompute +
                            st.spmmCompute + st.prediction +
                            st.exposedMemory);
    EXPECT_GT(st.attentionMacs, 0u);
    EXPECT_GT(st.dramRead, 0u);
    EXPECT_GT(st.dramWrite, 0u);
}

TEST(ViTCoDAccel, TwoProngedBeatsMonolithic)
{
    const auto plan = planFor(model::deitSmall(), 0.9, true);
    ViTCoDAccelerator two;
    ViTCoDConfig mono_cfg;
    mono_cfg.twoPronged = false;
    mono_cfg.name = "ViTCoD-mono";
    ViTCoDAccelerator mono(mono_cfg);
    EXPECT_LT(two.runAttention(plan).cycles,
              mono.runAttention(plan).cycles);
}

TEST(ViTCoDAccel, LineAllocationUsesAllLines)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitBase(), 0.9, true);
    const LayerAttentionStats st =
        acc.simulateAttentionLayer(plan, 6);
    // Denser + sparser + decoder engines share all 64 lines.
    EXPECT_GT(st.denserLines, 0u);
    EXPECT_GT(st.sparserLines, 0u);
    EXPECT_LT(st.denserLines + st.sparserLines,
              acc.config().macArray.macLines + 1);
}

TEST(ViTCoDAccel, DenserLinesScaleWithGlobalWork)
{
    // More global tokens (denser work) => more denser lines.
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitBase(), 0.9, true);
    const auto shapes = model::attentionShapes(plan.model);
    // Deep layers have more global tokens than early ones.
    const auto early = acc.simulateAttentionLayer(plan, 0);
    const auto late =
        acc.simulateAttentionLayer(plan, shapes.size() - 1);
    double early_ngt = 0, late_ngt = 0;
    for (const auto &h : plan.heads) {
        if (h.layer == 0)
            early_ngt += static_cast<double>(h.plan.numGlobalTokens);
        if (h.layer == shapes.size() - 1)
            late_ngt += static_cast<double>(h.plan.numGlobalTokens);
    }
    if (late_ngt > 2.0 * early_ngt) {
        EXPECT_GE(late.denserLines, early.denserLines);
    }
}

TEST(ViTCoDAccel, QForwardingAvoidsGathersWhenReordered)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitSmall(), 0.9, true);
    for (size_t l = 0; l < 12; ++l) {
        const auto st = acc.simulateAttentionLayer(plan, l);
        // All heads have global tokens at this operating point, so
        // query-based forwarding removes every gather.
        bool all_have_globals = true;
        for (const auto &h : plan.heads)
            if (h.layer == l && h.plan.numGlobalTokens == 0)
                all_have_globals = false;
        if (all_have_globals) {
            EXPECT_EQ(st.qGatherMisses, 0u) << "layer " << l;
        }
    }
}

TEST(ViTCoDAccel, PruneOnlyPlansPayForGathers)
{
    // Build a prune-only plan manually: reuse the pipeline but strip
    // reordering by re-running splitConquer's pruneOnly per head.
    const model::AttentionMapGenerator gen(model::deitSmall());
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = 0.9;

    auto plan = planFor(model::deitSmall(), 0.9, true);
    for (auto &h : plan.heads)
        h.plan = core::pruneOnly(gen.generate(h.layer, h.head), sc);

    ViTCoDAccelerator acc;
    const auto st = acc.simulateAttentionLayer(plan, 11);
    EXPECT_GT(st.qGatherMisses, 0u);
}

TEST(ViTCoDAccel, LruMissesExactOnKnownPattern)
{
    // Diagonal CSC with window >= bandwidth: first touch per row
    // only.
    sparse::BitMask m(8, 8);
    for (size_t i = 0; i < 8; ++i)
        m.set(i, i, true);
    const auto csc = sparse::Csc::fromMask(m);
    EXPECT_EQ(ViTCoDAccelerator::lruQMisses(csc, 2), 8u);

    // Dense column mask: every row touched once per column; window 1
    // re-misses rows on the second column.
    sparse::BitMask two_cols(4, 2);
    for (size_t r = 0; r < 4; ++r) {
        two_cols.set(r, 0, true);
        two_cols.set(r, 1, true);
    }
    const auto csc2 = sparse::Csc::fromMask(two_cols);
    EXPECT_EQ(ViTCoDAccelerator::lruQMisses(csc2, 1), 8u);
    // Window 4 holds all rows: second column hits.
    EXPECT_EQ(ViTCoDAccelerator::lruQMisses(csc2, 4), 4u);
}

TEST(ViTCoDAccel, NlpModeAddsPredictionOverhead)
{
    ViTCoDConfig cfg;
    cfg.dynamicMaskPrediction = true;
    cfg.name = "ViTCoD-dyn";
    ViTCoDAccelerator dyn(cfg);
    ViTCoDAccelerator stat;
    const auto plan = planFor(model::bertBase(128), 0.9, true);
    const RunStats a = dyn.runAttention(plan);
    const RunStats b = stat.runAttention(plan);
    EXPECT_GT(a.cycles, b.cycles);
    EXPECT_GT(a.preprocessSeconds, 0.0);
    EXPECT_DOUBLE_EQ(b.preprocessSeconds, 0.0);
}

TEST(ViTCoDAccel, EndToEndLargerThanAttention)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    EXPECT_GT(acc.runEndToEnd(plan).cycles,
              acc.runAttention(plan).cycles);
}

TEST(ViTCoDAccel, TimingDecompositionSumsToTotal)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::levit128(), 0.8, true);
    const RunStats rs = acc.runAttention(plan);
    EXPECT_NEAR(rs.seconds,
                rs.computeSeconds + rs.dataMoveSeconds +
                    rs.preprocessSeconds,
                1e-12);
    EXPECT_GE(rs.dataMoveSeconds, 0.0);
}

TEST(ViTCoDAccel, UtilizationInUnitRange)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitBase(), 0.9, true);
    const RunStats rs = acc.runEndToEnd(plan);
    EXPECT_GT(rs.utilization, 0.0);
    EXPECT_LE(rs.utilization, 1.0);
}

TEST(ViTCoDAccel, EnergyHasAllComponents)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const RunStats rs = acc.runAttention(plan);
    EXPECT_GT(rs.energy.macPj, 0.0);
    EXPECT_GT(rs.energy.sramPj, 0.0);
    EXPECT_GT(rs.energy.dramPj, 0.0);
    EXPECT_GT(rs.energy.staticPj, 0.0);
}

TEST(ViTCoDAccel, Deterministic)
{
    ViTCoDAccelerator acc;
    const auto plan = planFor(model::levit192(), 0.8, true);
    const RunStats a = acc.runAttention(plan);
    const RunStats b = acc.runAttention(plan);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramRead, b.dramRead);
}

/** Sparsity sweep over the full hardware stack. */
class AccelSparsitySweep : public ::testing::TestWithParam<double>
{};

TEST_P(AccelSparsitySweep, MoreSparsityNeverSlower)
{
    const double s = GetParam();
    ViTCoDAccelerator acc;
    const auto lo = planFor(model::deitSmall(), s, true);
    const auto hi = planFor(model::deitSmall(), s + 0.05, true);
    EXPECT_GE(acc.runAttention(lo).cycles,
              acc.runAttention(hi).cycles);
}

INSTANTIATE_TEST_SUITE_P(Ratios, AccelSparsitySweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

} // namespace
} // namespace vitcod::accel
