/**
 * @file
 * Traffic/work accounting identities of the rebuilt baselines:
 * each model's DRAM bytes and MAC counts must equal the closed-form
 * expressions its documented dataflow implies — catching silent
 * drift between the prose model descriptions and the code.
 */

#include <gtest/gtest.h>

#include "accel/sanger.h"
#include "accel/spatten.h"
#include "core/pipeline.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
deitBasePlan()
{
    return core::buildModelPlan(model::deitBase(),
                                core::makePipelineConfig(0.9, true));
}

TEST(SpAttenAccounting, MacsMatchCascadeFormula)
{
    SpAttenAccelerator acc;
    const auto plan = deitBasePlan();
    const RunStats rs = acc.runAttention(plan);

    double expect = 0.0;
    for (size_t l = 0; l < 12; ++l) {
        const double n = 197.0 * acc.tokenKeepAt(l, 12);
        const double h = 12.0 * acc.headKeepAt(l, 12);
        expect += 2.0 * n * n * 64.0 * h; // QK^T + SV, dense
    }
    EXPECT_NEAR(static_cast<double>(rs.macs), expect,
                0.001 * expect);
}

TEST(SpAttenAccounting, TrafficMatchesQuantizedQkv)
{
    SpAttenAccelerator acc;
    const auto plan = deitBasePlan();
    const RunStats rs = acc.runAttention(plan);

    double expect_read = 0.0;
    for (size_t l = 0; l < 12; ++l) {
        const double n = 197.0 * acc.tokenKeepAt(l, 12);
        const double h = 12.0 * acc.headKeepAt(l, 12);
        expect_read += 3.0 * n * h * 64.0 * 2.0 * 0.8; // quantized
    }
    EXPECT_NEAR(static_cast<double>(rs.dramRead), expect_read,
                0.01 * expect_read);
}

TEST(SangerAccounting, MacsIncludePredictionPass)
{
    SangerAccelerator acc;
    const auto plan = deitBasePlan();
    const RunStats rs = acc.runAttention(plan);

    const double n = 197.0, h = 12.0, dk = 64.0;
    const double keep = 1.0 - acc.config().operatingSparsity;
    const double per_layer = n * n * dk * h * 0.25 // prediction
                             + 2.0 * n * n * keep * h * dk;
    EXPECT_NEAR(static_cast<double>(rs.macs), 12.0 * per_layer,
                0.01 * 12.0 * per_layer);
}

TEST(SangerAccounting, SpillOnlyWhenSExceedsBuffer)
{
    // At its 55% operating sparsity on DeiT-Base, Sanger's sparse S
    // per layer is ~419 KiB > 96 KiB: spill expected. Shrinking the
    // workload (LeViT stage tokens) removes it.
    SangerAccelerator acc;
    const auto big = deitBasePlan();
    const RunStats rs_big = acc.runAttention(big);
    const double qkv_mask =
        12.0 * (3.0 * 197.0 * 12.0 * 64.0 * 2.0 +
                197.0 * 197.0 * 12.0 / 8.0);
    EXPECT_GT(static_cast<double>(rs_big.dramRead),
              qkv_mask * 1.05); // visibly more than QKV+masks

    const auto small = core::buildModelPlan(
        model::levit128(), core::makePipelineConfig(0.8, true));
    const RunStats rs_small = acc.runAttention(small);
    // LeViT stages are small: most of S fits; reads stay close to
    // QKV+masks (stage 1 at 196 tokens still spills a little).
    double qkv_small = 0.0;
    for (const auto &st : small.model.stages) {
        const double n = st.tokens, h = st.heads, dk = st.headDim;
        qkv_small += st.layers *
                     (3.0 * n * h * dk * 2.0 + n * n * h / 8.0);
    }
    EXPECT_LT(static_cast<double>(rs_small.dramRead),
              qkv_small * 1.35);
}

TEST(SpAttenAccounting, CascadeMakesDeeperLayersCheaper)
{
    // Through token pruning, SpAtten's later layers do less work:
    // total MACs must be below the no-pruning dense count.
    SpAttenAccelerator acc;
    const auto plan = deitBasePlan();
    const RunStats rs = acc.runAttention(plan);
    const double dense_full =
        12.0 * 2.0 * 197.0 * 197.0 * 64.0 * 12.0;
    EXPECT_LT(static_cast<double>(rs.macs), dense_full);
}

} // namespace
} // namespace vitcod::accel
