/**
 * @file
 * Tests of the shared device currency (RunStats) and configuration
 * failure injection across the accelerator models: invalid configs
 * must die loudly at construction, not corrupt results later.
 */

#include <gtest/gtest.h>

#include "accel/sanger.h"
#include "accel/spatten.h"
#include "accel/vitcod_accel.h"

namespace vitcod::accel {
namespace {

TEST(RunStats, AggregationSumsAllFields)
{
    RunStats a;
    a.seconds = 1.0;
    a.cycles = 10;
    a.computeSeconds = 0.6;
    a.dataMoveSeconds = 0.3;
    a.preprocessSeconds = 0.1;
    a.macs = 100;
    a.dramRead = 5;
    a.dramWrite = 7;
    a.sramRead = 11;
    a.sramWrite = 13;
    a.energy = {1.0, 2.0, 3.0, 4.0};

    RunStats b = a;
    a += b;
    EXPECT_DOUBLE_EQ(a.seconds, 2.0);
    EXPECT_EQ(a.cycles, 20u);
    EXPECT_DOUBLE_EQ(a.computeSeconds, 1.2);
    EXPECT_EQ(a.macs, 200u);
    EXPECT_EQ(a.dramTotal(), 24u);
    EXPECT_EQ(a.sramRead, 22u);
    EXPECT_DOUBLE_EQ(a.energy.totalPj(), 20.0);
}

TEST(RunStats, EnergyJoulesConversion)
{
    RunStats rs;
    rs.energy = {0.0, 0.0, 0.0, 1e12}; // 1e12 pJ = 1 J
    EXPECT_DOUBLE_EQ(rs.energyJoules(), 1.0);
}

TEST(ConfigDeath, ViTCoDAeLinesMustLeaveEngineLines)
{
    ViTCoDConfig cfg;
    cfg.macArray.macLines = 8;
    cfg.aeLines = 8;
    EXPECT_DEATH(ViTCoDAccelerator{cfg}, "AE lines");
}

TEST(ConfigDeath, SpAttenRejectsBadKeepRatios)
{
    SpAttenConfig zero;
    zero.tokenKeepFinal = 0.0;
    EXPECT_DEATH(SpAttenAccelerator{zero}, "keep ratio");
    SpAttenConfig over;
    over.headKeepFinal = 1.5;
    EXPECT_DEATH(SpAttenAccelerator{over}, "keep ratio");
}

TEST(ConfigDeath, SangerRejectsBadOperatingPoint)
{
    SangerConfig full;
    full.operatingSparsity = 1.0;
    EXPECT_DEATH(SangerAccelerator{full}, "sparsity");
    SangerConfig pack;
    pack.packEfficiency = 0.0;
    EXPECT_DEATH(SangerAccelerator{pack}, "pack efficiency");
}

TEST(Config, AblationVariantsCarryDistinctNames)
{
    ViTCoDConfig a;
    a.name = "ViTCoD-noAE";
    a.enableAeEngines = false;
    ViTCoDAccelerator acc(a);
    EXPECT_EQ(acc.name(), "ViTCoD-noAE");
}

TEST(Config, ResourceScalingIsMonotone)
{
    // Doubling every resource must never slow the accelerator.
    const auto plan = core::buildModelPlan(
        model::deitSmall(), core::makePipelineConfig(0.9, true));
    ViTCoDConfig big;
    big.macArray.macLines = 128;
    big.dram.bandwidthGBps = 153.6;
    big.qkvBufBytes = 256 * 1024;
    big.sBufferBytes = 192 * 1024;
    ViTCoDAccelerator base;
    ViTCoDAccelerator scaled(big);
    EXPECT_LE(scaled.runAttention(plan).cycles,
              base.runAttention(plan).cycles);
}

TEST(Config, BandwidthOnlyScalingIsMonotone)
{
    const auto plan = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, false));
    ViTCoDConfig slow;
    slow.dram.bandwidthGBps = 9.6;
    ViTCoDAccelerator fast;
    ViTCoDAccelerator starved(slow);
    EXPECT_LT(fast.runAttention(plan).cycles,
              starved.runAttention(plan).cycles);
}

} // namespace
} // namespace vitcod::accel
