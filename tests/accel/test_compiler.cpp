/**
 * @file
 * Tests of the Fig. 14 interface pipeline: the compiler's
 * instruction streams and the agreement between the interpreter and
 * the analytic simulator (the static schedule must cost exactly the
 * same cycles either way for attention, and near-identical for
 * end-to-end where the interpreter overlaps across phase groups).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/compiler.h"
#include "core/pipeline.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
planFor(const model::VitModelConfig &m, double sparsity, bool ae)
{
    return core::buildModelPlan(m,
                                core::makePipelineConfig(sparsity, ae));
}

TEST(Compiler, EmitsPhasesPerLayer)
{
    Compiler comp;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const Program prog = comp.compile(plan, /*e2e=*/false);
    // Three barriers (SDDMM, softmax, SpMM) per layer.
    EXPECT_EQ(prog.count(Opcode::Barrier), 3u * 12u);
    EXPECT_EQ(prog.count(Opcode::SddmmDense), 12u);
    EXPECT_EQ(prog.count(Opcode::SddmmSparse), 12u);
    EXPECT_EQ(prog.count(Opcode::Softmax), 12u);
    EXPECT_EQ(prog.count(Opcode::SpmmDense), 12u);
    EXPECT_EQ(prog.count(Opcode::Decode), 12u);
    EXPECT_EQ(prog.count(Opcode::Predict), 0u);
}

TEST(Compiler, EndToEndAddsDensePhases)
{
    Compiler comp;
    const auto plan = planFor(model::levit128(), 0.8, true);
    const Program prog = comp.compile(plan, /*e2e=*/true);
    EXPECT_EQ(prog.count(Opcode::Gemm), 3u * 12u + 1u); // +stem
    EXPECT_EQ(prog.count(Opcode::Encode), 12u);
    EXPECT_EQ(prog.count(Opcode::Elementwise), 12u);
    EXPECT_TRUE(prog.endToEnd);
}

TEST(Compiler, NoAeNoDecode)
{
    Compiler comp;
    const auto plan = planFor(model::deitTiny(), 0.9, false);
    const Program prog = comp.compile(plan, false);
    EXPECT_EQ(prog.count(Opcode::Decode), 0u);
}

TEST(Compiler, NlpModeEmitsPredict)
{
    ViTCoDConfig cfg;
    cfg.dynamicMaskPrediction = true;
    Compiler comp(cfg);
    const auto plan = planFor(model::bertBase(128), 0.9, true);
    const Program prog = comp.compile(plan, false);
    EXPECT_EQ(prog.count(Opcode::Predict), 12u);
}

TEST(Compiler, DisassemblyReadable)
{
    Compiler comp;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const Program prog = comp.compile(plan, false);
    std::ostringstream oss;
    prog.disassemble(oss, 10);
    EXPECT_NE(oss.str().find("SDDMM.D"), std::string::npos);
    EXPECT_NE(oss.str().find("truncated"), std::string::npos);
}

TEST(Compiler, DeterministicPrograms)
{
    Compiler comp;
    const auto plan = planFor(model::deitSmall(), 0.9, true);
    const Program a = comp.compile(plan, false);
    const Program b = comp.compile(plan, false);
    ASSERT_EQ(a.code.size(), b.code.size());
    for (size_t i = 0; i < a.code.size(); ++i) {
        EXPECT_EQ(a.code[i].op, b.code[i].op);
        EXPECT_EQ(a.code[i].arg0, b.code[i].arg0);
    }
}

/** Interpreter must reproduce the analytic simulator exactly. */
class CompilerAgreement
    : public ::testing::TestWithParam<std::tuple<std::string, double>>
{};

TEST_P(CompilerAgreement, AttentionCyclesMatchAnalyticSimulator)
{
    const auto [name, sparsity] = GetParam();
    const auto m = model::modelByName(name);
    const auto plan = planFor(m, sparsity, true);

    ViTCoDAccelerator sim;
    Compiler comp;
    Interpreter interp;
    const RunStats analytic = sim.runAttention(plan);
    const RunStats executed =
        interp.execute(comp.compile(plan, false));

    EXPECT_EQ(executed.cycles, analytic.cycles);
    EXPECT_EQ(executed.dramRead, analytic.dramRead);
    EXPECT_EQ(executed.dramWrite, analytic.dramWrite);
    EXPECT_EQ(executed.macs, analytic.macs);
}

TEST_P(CompilerAgreement, EndToEndCyclesWithinTolerance)
{
    const auto [name, sparsity] = GetParam();
    const auto m = model::modelByName(name);
    const auto plan = planFor(m, sparsity, true);

    ViTCoDAccelerator sim;
    Compiler comp;
    Interpreter interp;
    const double analytic =
        static_cast<double>(sim.runEndToEnd(plan).cycles);
    const double executed = static_cast<double>(
        interp.execute(comp.compile(plan, true)).cycles);
    // The interpreter overlaps across phase-group boundaries the
    // analytic model keeps separate; allow 3%.
    EXPECT_NEAR(executed / analytic, 1.0, 0.03) << name;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSparsities, CompilerAgreement,
    ::testing::Values(std::make_tuple("DeiT-Tiny", 0.9),
                      std::make_tuple("DeiT-Base", 0.9),
                      std::make_tuple("DeiT-Small", 0.6),
                      std::make_tuple("LeViT-128", 0.8),
                      std::make_tuple("LeViT-192", 0.8),
                      std::make_tuple("StridedTrans.", 0.9)));

TEST(Interpreter, EmptyProgramIsFree)
{
    Interpreter interp;
    const RunStats rs = interp.execute(Program{});
    EXPECT_EQ(rs.cycles, 0u);
    EXPECT_EQ(rs.macs, 0u);
}

TEST(Interpreter, NlpAgreementWithPrediction)
{
    ViTCoDConfig cfg;
    cfg.dynamicMaskPrediction = true;
    const auto plan = planFor(model::bertBase(384), 0.9, true);
    ViTCoDAccelerator sim(cfg);
    Compiler comp(cfg);
    Interpreter interp(cfg);
    EXPECT_EQ(interp.execute(comp.compile(plan, false)).cycles,
              sim.runAttention(plan).cycles);
}

TEST(CompilerDeath, MonolithicUnsupported)
{
    ViTCoDConfig cfg;
    cfg.twoPronged = false;
    EXPECT_DEATH(Compiler{cfg}, "two-pronged");
}

TEST(EngineHelpers, AllocationSumsToTotal)
{
    const auto a = allocateEngineLines({3.0, 1.0}, 64);
    EXPECT_EQ(a[0] + a[1], 64u);
    EXPECT_GT(a[0], a[1]);
    const auto b = allocateEngineLines({0.0, 5.0}, 64);
    EXPECT_EQ(b[0], 0u);
    EXPECT_EQ(b[1], 64u);
}

TEST(EngineHelpers, AllocationFloorsNonZeroWork)
{
    const auto a = allocateEngineLines({1.0, 10000.0}, 64);
    EXPECT_GE(a[0], 1u);
    EXPECT_EQ(a[0] + a[1], 64u);
}

} // namespace
} // namespace vitcod::accel
