/**
 * @file
 * verifyPlanFunctional: the optimized engine must agree with the
 * scalar oracle on every head of a real pipeline-built plan (kernel
 * drift at ulp scale), while pruning drift behaves like pruning —
 * zero at sparsity 0, growing with pruned mass.
 */

#include <gtest/gtest.h>

#include "accel/functional.h"
#include "core/pipeline.h"
#include "model/vit_config.h"

namespace vitcod::accel {
namespace {

core::ModelPlan
tinyPlan(double sparsity)
{
    return core::buildModelPlan(
        model::deitTiny(), core::makePipelineConfig(sparsity, true));
}

TEST(FunctionalVerification, EngineMatchesOracleOnRealPlans)
{
    const auto plan = tinyPlan(0.9);
    const auto rep = verifyPlanFunctional(
        plan, linalg::engine::KernelEngine::shared(), /*max_heads=*/6);
    EXPECT_EQ(rep.headsChecked, 6u);
    EXPECT_TRUE(rep.kernelsMatch(1e-4))
        << "kernel drift " << rep.maxKernelDrift;
}

TEST(FunctionalVerification, PruningDriftGrowsWithSparsity)
{
    const auto &eng = linalg::engine::KernelEngine::shared();
    const auto lo =
        verifyPlanFunctional(tinyPlan(0.5), eng, /*max_heads=*/3);
    const auto hi =
        verifyPlanFunctional(tinyPlan(0.95), eng, /*max_heads=*/3);
    EXPECT_LT(lo.maxKernelDrift, 1e-4);
    EXPECT_LT(hi.maxKernelDrift, 1e-4);
    EXPECT_GT(hi.maxPruningDrift, lo.maxPruningDrift * 0.5);
    EXPECT_GT(hi.maxPruningDrift, 0.0);
}

TEST(FunctionalVerification, DeterministicInSeed)
{
    const auto plan = tinyPlan(0.9);
    const auto &eng = linalg::engine::KernelEngine::shared();
    const auto a = verifyPlanFunctional(plan, eng, 2, /*seed=*/7);
    const auto b = verifyPlanFunctional(plan, eng, 2, /*seed=*/7);
    EXPECT_EQ(a.maxKernelDrift, b.maxKernelDrift);
    EXPECT_EQ(a.maxPruningDrift, b.maxPruningDrift);
}

} // namespace
} // namespace vitcod::accel
