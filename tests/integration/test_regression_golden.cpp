/**
 * @file
 * Golden regression pins: exact cycle/traffic/MAC counts of the
 * default-seed simulation for two representative models. Everything
 * in the stack is deterministic, so any diff here means a model
 * change — intentional changes must update these constants (and the
 * calibration tables in EXPERIMENTS.md).
 */

#include <gtest/gtest.h>

#include "accel/vitcod_accel.h"
#include "core/pipeline.h"

namespace vitcod {
namespace {

struct Golden
{
    const char *model;
    Cycles attnCycles;
    Cycles endToEndCycles;
    Bytes attnDramRead;
    Bytes attnDramWrite;
    MacOps attnMacs;
};

class GoldenRegression : public ::testing::TestWithParam<Golden>
{};

TEST_P(GoldenRegression, ExactCounts)
{
    const Golden g = GetParam();
    const auto m = model::modelByName(g.model);
    const auto plan = core::buildModelPlan(
        m, core::makePipelineConfig(0.9, true));
    accel::ViTCoDAccelerator acc;
    const accel::RunStats attn = acc.runAttention(plan);
    const accel::RunStats e2e = acc.runEndToEnd(plan);

    EXPECT_EQ(attn.cycles, g.attnCycles);
    EXPECT_EQ(e2e.cycles, g.endToEndCycles);
    EXPECT_EQ(attn.dramRead, g.attnDramRead);
    EXPECT_EQ(attn.dramWrite, g.attnDramWrite);
    EXPECT_EQ(attn.macs, g.attnMacs);
}

INSTANTIATE_TEST_SUITE_P(
    DefaultSeed, GoldenRegression,
    ::testing::Values(
        Golden{"DeiT-Tiny", 71034, 2455078, 2230387, 907776,
               20241920},
        Golden{"LeViT-128", 17594, 593387, 417078, 175104, 2889632}),
    [](const auto &info) {
        std::string n = info.param.model;
        for (auto &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

} // namespace
} // namespace vitcod
