/**
 * @file
 * Integration tests: the full algorithm pipeline feeding the full
 * device fleet, plus functional equivalence of a plan executed by
 * the golden kernels.
 */

#include <gtest/gtest.h>

#include "accel/device.h"
#include "accel/vitcod_accel.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "model/attention_gen.h"

namespace vitcod {
namespace {

TEST(Integration, AllDevicesRunAllSevenModels)
{
    auto devices = accel::makeAllDevices();
    ASSERT_EQ(devices.size(), 6u);
    for (const auto &m : model::allSevenModels()) {
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(m.nominalSparsity, true));
        for (auto &dev : devices) {
            const accel::RunStats rs = dev->runAttention(plan);
            EXPECT_GT(rs.seconds, 0.0)
                << dev->name() << " on " << m.name;
            const accel::RunStats e2e = dev->runEndToEnd(plan);
            EXPECT_GT(e2e.seconds, rs.seconds)
                << dev->name() << " on " << m.name;
        }
    }
}

TEST(Integration, DeviceOrderMatchesFig15)
{
    const auto devices = accel::makeAllDevices();
    ASSERT_EQ(devices[0]->name(), "CPU");
    ASSERT_EQ(devices[1]->name(), "EdgeGPU");
    ASSERT_EQ(devices[2]->name(), "GPU");
    ASSERT_EQ(devices[3]->name(), "SpAtten");
    ASSERT_EQ(devices[4]->name(), "Sanger");
    ASSERT_EQ(devices[5]->name(), "ViTCoD");
}

TEST(Integration, PlanExecutesFunctionallyThroughGoldenKernels)
{
    // A reordered plan must compute exactly the same attention
    // output as the unpermuted masked reference, modulo the token
    // relabeling — validating that the hardware's permuted schedule
    // is semantics-preserving.
    const model::AttentionMapGenerator gen(model::deitTiny());
    const linalg::Matrix a = gen.generate(6, 1);
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = 0.9;
    const core::SparseAttentionPlan plan = core::splitConquer(a, sc);

    const size_t n = plan.tokens;
    const size_t d = 32;
    Rng rng(99);
    const linalg::Matrix q = linalg::Matrix::randomNormal(n, d, rng);
    const linalg::Matrix k = linalg::Matrix::randomNormal(n, d, rng);
    const linalg::Matrix v = linalg::Matrix::randomNormal(n, d, rng);

    // Reference: original-order mask.
    const sparse::BitMask mask0 =
        plan.mask.permuteSymmetric([&] {
            // inverse permutation
            std::vector<uint32_t> inv(n);
            for (uint32_t i = 0; i < n; ++i)
                inv[plan.perm[i]] = i;
            return inv;
        }());
    const linalg::Matrix ref =
        linalg::denseMaskedAttention(q, k, v, mask0);

    // Permuted execution: permute tokens, run, un-permute outputs.
    const linalg::Matrix qp = linalg::permuteRows(q, plan.perm);
    const linalg::Matrix kp = linalg::permuteRows(k, plan.perm);
    const linalg::Matrix vp = linalg::permuteRows(v, plan.perm);
    const linalg::Matrix outp = linalg::spmm(
        linalg::maskedSoftmaxRows(linalg::sddmm(qp, kp, plan.mask)),
        vp);
    // Un-permute: row i of outp corresponds to token perm[i].
    linalg::Matrix out(n, d);
    for (size_t i = 0; i < n; ++i)
        for (size_t c = 0; c < d; ++c)
            out(plan.perm[i], c) = outp(i, c);

    EXPECT_LT(linalg::maxAbsDiff(out, ref), 1e-4);
}

TEST(Integration, ViTCoDFastestAccelerator)
{
    auto devices = accel::makeAllDevices();
    const auto plan = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, true));
    double vitcod = 0.0, spatten = 0.0, sanger = 0.0;
    for (auto &dev : devices) {
        const double t = dev->runAttention(plan).seconds;
        if (dev->name() == "ViTCoD")
            vitcod = t;
        else if (dev->name() == "SpAtten")
            spatten = t;
        else if (dev->name() == "Sanger")
            sanger = t;
    }
    EXPECT_LT(vitcod, sanger);
    EXPECT_LT(sanger, spatten);
}

TEST(Integration, EnergyEfficiencyViTCoDBestAmongAccelerators)
{
    auto devices = accel::makeAllDevices();
    const auto plan = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, true));
    double vitcod = 0.0, sanger = 0.0;
    for (auto &dev : devices) {
        const double e = dev->runAttention(plan).energyJoules();
        if (dev->name() == "ViTCoD")
            vitcod = e;
        else if (dev->name() == "Sanger")
            sanger = e;
    }
    EXPECT_LT(vitcod, sanger);
}

TEST(Integration, DeterministicAcrossProcessRuns)
{
    // Everything derives from fixed seeds: two full rebuilds of the
    // same plan + simulation agree bit-for-bit.
    const auto p1 = core::buildModelPlan(
        model::levit256(), core::makePipelineConfig(0.8, true));
    const auto p2 = core::buildModelPlan(
        model::levit256(), core::makePipelineConfig(0.8, true));
    accel::ViTCoDAccelerator acc;
    EXPECT_EQ(acc.runAttention(p1).cycles,
              acc.runAttention(p2).cycles);
}

} // namespace
} // namespace vitcod
