/**
 * @file
 * Shape-level checks of the paper's headline claims. Absolute
 * factors depend on calibration (documented in EXPERIMENTS.md); the
 * assertions here pin the *orderings* and the rough magnitudes that
 * make the paper's story hold.
 */

#include <gtest/gtest.h>

#include "accel/device.h"
#include "accel/sanger.h"
#include "accel/vitcod_accel.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "model/attention_gen.h"

namespace vitcod {
namespace {

double
geomeanSpeedupOverViTCoD(const std::string &baseline, double sparsity)
{
    auto devices = accel::makeAllDevices();
    RunningStat speedups;
    for (const auto &m : model::coreSixModels()) {
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(sparsity, true));
        double base_t = 0.0, vitcod_t = 0.0;
        for (auto &dev : devices) {
            if (dev->name() == baseline)
                base_t = dev->runAttention(plan).seconds;
            if (dev->name() == "ViTCoD")
                vitcod_t = dev->runAttention(plan).seconds;
        }
        speedups.add(base_t / vitcod_t);
    }
    return speedups.geomean();
}

TEST(PaperClaims, Fig15SpeedupOrdering)
{
    // CPU slowest, then EdgeGPU, then GPU, then SpAtten, then
    // Sanger; ViTCoD fastest (paper: 235.3/142.9/86.0/10.1/6.8x).
    const double cpu = geomeanSpeedupOverViTCoD("CPU", 0.9);
    const double edge = geomeanSpeedupOverViTCoD("EdgeGPU", 0.9);
    const double gpu = geomeanSpeedupOverViTCoD("GPU", 0.9);
    const double spatten = geomeanSpeedupOverViTCoD("SpAtten", 0.9);
    const double sanger = geomeanSpeedupOverViTCoD("Sanger", 0.9);
    EXPECT_GT(cpu, edge);
    EXPECT_GT(edge, gpu);
    EXPECT_GT(gpu, spatten);
    EXPECT_GT(spatten, sanger);
    EXPECT_GT(sanger, 1.0);
}

TEST(PaperClaims, Fig15MagnitudesInBand)
{
    // Within a factor-~2 band of the paper's reported averages.
    EXPECT_GT(geomeanSpeedupOverViTCoD("CPU", 0.9), 100.0);
    EXPECT_GT(geomeanSpeedupOverViTCoD("EdgeGPU", 0.9), 50.0);
    EXPECT_GT(geomeanSpeedupOverViTCoD("GPU", 0.9), 20.0);
    const double spatten = geomeanSpeedupOverViTCoD("SpAtten", 0.9);
    EXPECT_GT(spatten, 5.0);
    EXPECT_LT(spatten, 25.0);
    const double sanger = geomeanSpeedupOverViTCoD("Sanger", 0.9);
    EXPECT_GT(sanger, 3.5);
    EXPECT_LT(sanger, 15.0);
}

TEST(PaperClaims, SpeedupsShrinkAt80PercentSparsity)
{
    // Paper: 10.1x -> 4.8x (SpAtten) and 6.8x -> 3.2x (Sanger) when
    // ViTCoD operates at 80% instead of 90%.
    EXPECT_LT(geomeanSpeedupOverViTCoD("SpAtten", 0.8),
              geomeanSpeedupOverViTCoD("SpAtten", 0.9));
    EXPECT_LT(geomeanSpeedupOverViTCoD("Sanger", 0.8),
              geomeanSpeedupOverViTCoD("Sanger", 0.9));
}

TEST(PaperClaims, PruningBenefitLargerThanReorderingBenefit)
{
    // Sec. VI-C: pruning contributes ~5.1x, reordering ~2.6x.
    const model::AttentionMapGenerator gen(model::deitSmall());
    core::SplitConquerConfig sc;
    sc.mode = core::PruneMode::TargetSparsity;
    sc.targetSparsity = 0.9;

    auto full = core::buildModelPlan(
        model::deitSmall(), core::makePipelineConfig(0.9, true));
    auto prune_only = full;
    auto reorder_only = full;
    for (size_t i = 0; i < full.heads.size(); ++i) {
        const auto a = gen.generate(full.heads[i].layer,
                                    full.heads[i].head);
        prune_only.heads[i].plan = core::pruneOnly(a, sc);
        reorder_only.heads[i].plan = core::reorderOnly(a, sc);
    }

    accel::ViTCoDAccelerator acc;
    const double t_full = acc.runAttention(full).seconds;
    const double t_prune = acc.runAttention(prune_only).seconds;
    const double t_reorder = acc.runAttention(reorder_only).seconds;

    const double pruning_benefit = t_reorder / t_full;
    const double reordering_benefit = t_prune / t_full;
    EXPECT_GT(pruning_benefit, reordering_benefit);
    EXPECT_GT(pruning_benefit, 3.0);   // paper: 8.14x @90%
    EXPECT_GT(reordering_benefit, 1.1); // paper: 2.03x @90%
}

TEST(PaperClaims, AeTradesMovementForComputation)
{
    // Fig. 19 analysis: the AE shrinks the data-movement share.
    accel::ViTCoDAccelerator acc;
    const auto with_ae = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, true));
    const auto without = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, false));
    const auto a = acc.runAttention(with_ae);
    const auto b = acc.runAttention(without);
    const double move_frac_ae = a.dataMoveSeconds / a.seconds;
    const double move_frac_no = b.dataMoveSeconds / b.seconds;
    EXPECT_LT(move_frac_ae, move_frac_no);
    EXPECT_GT(a.macs, b.macs); // decode MACs added
}

TEST(PaperClaims, EnergyEfficiencyGainOverSanger)
{
    // Paper: 9.8x over the most competitive baseline.
    auto devices = accel::makeAllDevices();
    RunningStat ratio;
    for (const auto &m : model::coreSixModels()) {
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(0.9, true));
        double sanger_e = 0.0, vitcod_e = 0.0;
        for (auto &dev : devices) {
            if (dev->name() == "Sanger")
                sanger_e = dev->runAttention(plan).energyJoules();
            if (dev->name() == "ViTCoD")
                vitcod_e = dev->runAttention(plan).energyJoules();
        }
        ratio.add(sanger_e / vitcod_e);
    }
    EXPECT_GT(ratio.geomean(), 2.0);
    EXPECT_LT(ratio.geomean(), 40.0);
}

TEST(PaperClaims, NlpDynamicPredictionStillBeatsSanger)
{
    // Sec. VI-B: with prediction overhead charged, ViTCoD keeps a
    // >1x edge over Sanger on BERT at 90% and a smaller one at 60%.
    accel::ViTCoDConfig cfg;
    cfg.dynamicMaskPrediction = true;
    accel::ViTCoDAccelerator vitcod(cfg);
    accel::SangerAccelerator sanger;

    auto speedup = [&](double s) {
        const auto plan = core::buildModelPlan(
            model::bertBase(384), core::makePipelineConfig(s, true));
        return sanger.runAttention(plan).seconds /
               vitcod.runAttention(plan).seconds;
    };
    const double at90 = speedup(0.9);
    const double at60 = speedup(0.6);
    EXPECT_GT(at90, at60); // paper: 3.69x vs 1.93x
    EXPECT_GT(at60, 1.0);
}

TEST(PaperClaims, AttentionLatencyReductionVsDenseBaseline)
{
    // Fig. 17: ViTCoD cuts 45.1-85.8% (DeiT) / 72.0-84.3% (LeViT)
    // of dense attention latency on its own hardware.
    accel::ViTCoDAccelerator acc;
    for (const auto &m : model::coreSixModels()) {
        const auto sparse_plan = core::buildModelPlan(
            m, core::makePipelineConfig(m.nominalSparsity, true));
        const auto dense_plan = core::buildModelPlan(
            m, core::makePipelineConfig(0.0, false));
        const double t_s = acc.runAttention(sparse_plan).seconds;
        const double t_d = acc.runAttention(dense_plan).seconds;
        const double reduction = 1.0 - t_s / t_d;
        EXPECT_GT(reduction, 0.40) << m.name;
        EXPECT_LT(reduction, 0.95) << m.name;
    }
}

} // namespace
} // namespace vitcod
