/**
 * @file
 * Property sweep over every (model, device) pair at its nominal
 * operating point: accounting identities and sanity bounds that any
 * simulated run must satisfy regardless of workload or device.
 */

#include <gtest/gtest.h>

#include "accel/device.h"
#include "core/pipeline.h"

namespace vitcod {
namespace {

class DeviceModelSweep
    : public ::testing::TestWithParam<std::string>
{
  protected:
    static core::ModelPlan
    planFor(const std::string &name)
    {
        const auto m = model::modelByName(name);
        return core::buildModelPlan(
            m, core::makePipelineConfig(m.nominalSparsity, true));
    }
};

TEST_P(DeviceModelSweep, AccountingIdentitiesHold)
{
    const auto plan = planFor(GetParam());
    for (auto &dev : accel::makeAllDevices()) {
        for (bool e2e : {false, true}) {
            const accel::RunStats rs =
                e2e ? dev->runEndToEnd(plan)
                    : dev->runAttention(plan);
            // Latency decomposition sums to the total.
            EXPECT_NEAR(rs.seconds,
                        rs.computeSeconds + rs.dataMoveSeconds +
                            rs.preprocessSeconds,
                        1e-9 + 1e-9 * rs.seconds)
                << dev->name() << " e2e=" << e2e;
            // All components non-negative.
            EXPECT_GE(rs.computeSeconds, 0.0) << dev->name();
            EXPECT_GE(rs.dataMoveSeconds, 0.0) << dev->name();
            EXPECT_GE(rs.preprocessSeconds, 0.0) << dev->name();
            // Work and energy are positive and finite.
            EXPECT_GT(rs.macs, 0u) << dev->name();
            EXPECT_GT(rs.energyJoules(), 0.0) << dev->name();
            EXPECT_LT(rs.energyJoules(), 100.0) << dev->name();
            // A single inference finishes within a second... except
            // on the CPU model for the largest ViTs, where eager-
            // mode end-to-end can exceed it; allow 5 s.
            EXPECT_LT(rs.seconds, 5.0) << dev->name();
            EXPECT_GT(rs.seconds, 1e-7) << dev->name();
        }
    }
}

TEST_P(DeviceModelSweep, AttentionIsSubsetOfEndToEnd)
{
    const auto plan = planFor(GetParam());
    for (auto &dev : accel::makeAllDevices()) {
        const accel::RunStats attn = dev->runAttention(plan);
        const accel::RunStats e2e = dev->runEndToEnd(plan);
        EXPECT_LT(attn.seconds, e2e.seconds) << dev->name();
        EXPECT_LE(attn.macs, e2e.macs) << dev->name();
        EXPECT_LE(attn.dramTotal(), e2e.dramTotal()) << dev->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSevenModels, DeviceModelSweep,
    ::testing::Values("StridedTrans.", "DeiT-Tiny", "DeiT-Small",
                      "DeiT-Base", "LeViT-128", "LeViT-192",
                      "LeViT-256"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &ch : n)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return n;
    });

} // namespace
} // namespace vitcod
