/**
 * @file
 * Seed-robustness properties: the reproduction's conclusions must
 * not hinge on one lucky draw of the synthetic attention maps. The
 * headline device ordering and the algorithm invariants are checked
 * across several generator seeds.
 */

#include <gtest/gtest.h>

#include "accel/sanger.h"
#include "accel/spatten.h"
#include "accel/vitcod_accel.h"
#include "core/pipeline.h"

namespace vitcod {
namespace {

core::ModelPlan
seededPlan(const model::VitModelConfig &m, uint64_t seed)
{
    core::PipelineConfig cfg =
        core::makePipelineConfig(m.nominalSparsity, true);
    cfg.seed = seed;
    cfg.gen.seed = seed * 31 + 7;
    return core::buildModelPlan(m, cfg);
}

class SeedSweep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SeedSweep, AcceleratorOrderingHolds)
{
    const uint64_t seed = GetParam();
    accel::ViTCoDAccelerator vitcod;
    accel::SpAttenAccelerator spatten;
    accel::SangerAccelerator sanger;
    for (const auto &m : {model::deitTiny(), model::levit128()}) {
        const auto plan = seededPlan(m, seed);
        const double t_v = vitcod.runAttention(plan).seconds;
        const double t_sp = spatten.runAttention(plan).seconds;
        const double t_sa = sanger.runAttention(plan).seconds;
        EXPECT_LT(t_v, t_sa) << m.name << " seed " << seed;
        EXPECT_LT(t_sa, t_sp) << m.name << " seed " << seed;
    }
}

TEST_P(SeedSweep, SparsityAndMassStableAcrossSeeds)
{
    const uint64_t seed = GetParam();
    const auto plan = seededPlan(model::deitTiny(), seed);
    EXPECT_NEAR(plan.avgSparsity, 0.9, 0.01);
    EXPECT_GT(plan.avgRetainedMass, 0.75);
    EXPECT_LT(plan.avgRetainedMass, 0.95);
    EXPECT_GT(plan.avgGlobalTokenFrac, 0.0);
}

TEST_P(SeedSweep, QualityEstimateStable)
{
    const uint64_t seed = GetParam();
    const auto plan = seededPlan(model::deitTiny(), seed);
    EXPECT_GT(plan.estimatedQuality, 71.0); // <= ~1.2% drop
    EXPECT_LE(plan.estimatedQuality, 72.2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 17, 123456789));

TEST(SeedRobustness, DifferentSeedsDifferentMasksSameShape)
{
    const auto a = seededPlan(model::deitTiny(), 5);
    const auto b = seededPlan(model::deitTiny(), 6);
    EXPECT_NE(a.heads[0].plan.mask, b.heads[0].plan.mask);
    EXPECT_NEAR(a.avgSparsity, b.avgSparsity, 1e-6);
}

} // namespace
} // namespace vitcod
