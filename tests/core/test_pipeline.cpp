/**
 * @file
 * Tests of the unified ViTCoD pipeline (Fig. 10).
 */

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace vitcod::core {
namespace {

TEST(Pipeline, PlanCoversEveryHead)
{
    const auto plan =
        buildModelPlan(model::deitTiny(), makePipelineConfig(0.9, true));
    EXPECT_EQ(plan.heads.size(), 12u * 3u);
    // planOf must find each (layer, head) pair.
    EXPECT_NO_FATAL_FAILURE(plan.planOf(0, 0));
    EXPECT_NO_FATAL_FAILURE(plan.planOf(11, 2));
}

TEST(Pipeline, AvgSparsityNearTarget)
{
    const auto plan =
        buildModelPlan(model::deitTiny(), makePipelineConfig(0.9, true));
    EXPECT_NEAR(plan.avgSparsity, 0.9, 0.01);
}

TEST(Pipeline, AeSummariesPerLayer)
{
    const auto plan = buildModelPlan(model::deitSmall(),
                                     makePipelineConfig(0.9, true));
    ASSERT_EQ(plan.ae.size(), 12u);
    for (const auto &l : plan.ae) {
        EXPECT_EQ(l.heads, 6u);
        EXPECT_EQ(l.compressed, 3u);
        EXPECT_GT(l.relErrorQ, 0.0);
        EXPECT_LT(l.relErrorQ, 0.5);
    }
    EXPECT_NEAR(plan.aeCompressionRatio(), 0.5, 1e-9);
}

TEST(Pipeline, AeDisabled)
{
    const auto plan = buildModelPlan(model::deitTiny(),
                                     makePipelineConfig(0.9, false));
    EXPECT_TRUE(plan.ae.empty());
    EXPECT_DOUBLE_EQ(plan.aeCompressionRatio(), 1.0);
    EXPECT_DOUBLE_EQ(plan.aeRelError, 0.0);
}

TEST(Pipeline, OddHeadCountRoundsBottleneckUp)
{
    // LeViT-192 stage 0 has 3 heads -> ceil(3/2) = 2.
    const auto plan = buildModelPlan(model::levit192(),
                                     makePipelineConfig(0.8, true));
    EXPECT_EQ(plan.ae[0].heads, 3u);
    EXPECT_EQ(plan.ae[0].compressed, 2u);
}

TEST(Pipeline, QualityEstimateNearBaselineAtNominalSparsity)
{
    // Paper Sec. VI-C: <1% drop at each model's operating point.
    for (const auto &m : model::coreSixModels()) {
        const auto plan = buildModelPlan(
            m, makePipelineConfig(m.nominalSparsity, true));
        EXPECT_GT(plan.estimatedQuality, m.baselineQuality - 1.0)
            << m.name;
        EXPECT_LE(plan.estimatedQuality, m.baselineQuality)
            << m.name;
    }
}

TEST(Pipeline, Deterministic)
{
    const auto a =
        buildModelPlan(model::deitTiny(), makePipelineConfig(0.9, true));
    const auto b =
        buildModelPlan(model::deitTiny(), makePipelineConfig(0.9, true));
    EXPECT_EQ(a.avgSparsity, b.avgSparsity);
    EXPECT_EQ(a.avgRetainedMass, b.avgRetainedMass);
    EXPECT_EQ(a.estimatedQuality, b.estimatedQuality);
    ASSERT_EQ(a.heads.size(), b.heads.size());
    EXPECT_EQ(a.heads[7].plan.mask, b.heads[7].plan.mask);
}

TEST(Pipeline, GlobalTokensPresentOnAverage)
{
    const auto plan = buildModelPlan(model::deitSmall(),
                                     makePipelineConfig(0.9, true));
    EXPECT_GT(plan.avgGlobalTokenFrac, 0.0);
    EXPECT_LT(plan.avgGlobalTokenFrac, 0.5);
}

TEST(Pipeline, HigherSparsityLowerQuality)
{
    const auto lo = buildModelPlan(model::deitBase(),
                                   makePipelineConfig(0.7, true));
    const auto hi = buildModelPlan(model::deitBase(),
                                   makePipelineConfig(0.95, true));
    EXPECT_GE(lo.estimatedQuality, hi.estimatedQuality);
}

TEST(Pipeline, LeViTStagesGetPlansWithMatchingTokens)
{
    const auto plan = buildModelPlan(model::levit128(),
                                     makePipelineConfig(0.8, true));
    EXPECT_EQ(plan.planOf(0, 0).tokens, 196u);
    EXPECT_EQ(plan.planOf(4, 0).tokens, 49u);
    EXPECT_EQ(plan.planOf(8, 0).tokens, 16u);
}

} // namespace
} // namespace vitcod::core
