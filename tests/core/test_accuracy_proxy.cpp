/**
 * @file
 * Tests of the accuracy proxy calibration (substitution S2).
 */

#include <gtest/gtest.h>

#include "core/accuracy_proxy.h"

namespace vitcod::core {
namespace {

TEST(AccuracyProxy, NoLossNoDrop)
{
    const AccuracyProxy p;
    EXPECT_DOUBLE_EQ(
        p.dropFromMask(1.0, model::Task::ImageClassification), 0.0);
    EXPECT_DOUBLE_EQ(p.dropFromRecon(0.0), 0.0);
}

TEST(AccuracyProxy, DropMonotoneInLostMass)
{
    const AccuracyProxy p;
    double prev = 0.0;
    for (double retained : {0.99, 0.95, 0.9, 0.8, 0.5}) {
        const double d =
            p.dropFromMask(retained, model::Task::ImageClassification);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(AccuracyProxy, HighRetentionSmallDrop)
{
    // Algorithm 1 retains ~95%+ mass at 90% sparsity; that must map
    // to the paper's <1% drop.
    const AccuracyProxy p;
    EXPECT_LT(p.dropFromMask(0.95,
                             model::Task::ImageClassification),
              1.0);
}

TEST(AccuracyProxy, NlpPenalized)
{
    const AccuracyProxy p;
    const double vit =
        p.dropFromMask(0.9, model::Task::ImageClassification);
    const double nlp = p.dropFromMask(0.9, model::Task::NlpGlue);
    EXPECT_GT(nlp, 2.0 * vit);
}

TEST(AccuracyProxy, EstimateClassification)
{
    const AccuracyProxy p;
    const double est = p.estimate(
        81.8, model::Task::ImageClassification, 0.97, 0.05);
    EXPECT_LT(est, 81.8);
    EXPECT_GT(est, 80.8); // < 1% total drop at this operating point
}

TEST(AccuracyProxy, EstimatePoseErrorIncreases)
{
    const AccuracyProxy p;
    const double est =
        p.estimate(43.7, model::Task::PoseEstimation, 0.9, 0.05);
    EXPECT_GT(est, 43.7); // MPJPE grows when quality drops
}

TEST(AccuracyProxy, DropSaturates)
{
    AccuracyProxyConfig cfg;
    cfg.maxDropPct = 10.0;
    const AccuracyProxy p(cfg);
    EXPECT_LE(p.dropFromMask(0.0, model::Task::NlpGlue), 10.0);
}

TEST(AccuracyProxy, ReconDropSmallAfterTraining)
{
    // Post-finetuning AE rel. error ~5% must cost <0.5% accuracy
    // (paper Sec. IV-C: "accuracy can be fully recovered").
    const AccuracyProxy p;
    EXPECT_LT(p.dropFromRecon(0.05), 0.5);
}

TEST(AccuracyProxy, FinetuneCurveRecovers)
{
    const auto curve = AccuracyProxy::finetuneCurve(100, 45.0, 81.0);
    ASSERT_EQ(curve.size(), 100u);
    EXPECT_NEAR(curve.front(), 45.0, 1e-9);
    EXPECT_GT(curve.back(), 80.9);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i], curve[i - 1]);
}

TEST(AccuracyProxy, FinetuneCurveMonotoneDownWhenStartHigh)
{
    const auto curve = AccuracyProxy::finetuneCurve(50, 5.0, 1.0);
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_LE(curve[i], curve[i - 1]);
}

} // namespace
} // namespace vitcod::core
