/**
 * @file
 * Tests of Algorithm 1 (split and conquer): pruning criteria,
 * reordering invariants, denser/sparser partition bookkeeping and
 * parameterized sparsity sweeps.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/split_conquer.h"
#include "model/attention_gen.h"

namespace vitcod::core {
namespace {

linalg::Matrix
deitMap(size_t layer = 6, size_t head = 0)
{
    const model::AttentionMapGenerator gen(model::deitSmall());
    return gen.generate(layer, head);
}

SplitConquerConfig
targetCfg(double sparsity)
{
    SplitConquerConfig cfg;
    cfg.mode = PruneMode::TargetSparsity;
    cfg.targetSparsity = sparsity;
    return cfg;
}

TEST(Prune, TargetSparsityHitsExactRowBudget)
{
    const auto a = deitMap();
    const auto mask = pruneAttention(a, targetCfg(0.9));
    const size_t keep = 20; // round(0.1 * 197)
    for (size_t r = 0; r < mask.rows(); ++r)
        EXPECT_EQ(mask.nnzInRow(r), keep);
}

TEST(Prune, TargetSparsityKeepsTopEntries)
{
    const auto a = deitMap();
    const auto mask = pruneAttention(a, targetCfg(0.9));
    // Every kept entry must be >= every pruned entry in its row.
    for (size_t r = 0; r < a.rows(); ++r) {
        float min_kept = 1e9f;
        float max_pruned = -1e9f;
        for (size_t c = 0; c < a.cols(); ++c) {
            if (mask.get(r, c))
                min_kept = std::min(min_kept, a(r, c));
            else
                max_pruned = std::max(max_pruned, a(r, c));
        }
        EXPECT_GE(min_kept, max_pruned) << "row " << r;
    }
}

TEST(Prune, MassPerQueryReachesThreshold)
{
    const auto a = deitMap();
    SplitConquerConfig cfg;
    cfg.mode = PruneMode::MassPerQuery;
    cfg.massThreshold = 0.9;
    const auto mask = pruneAttention(a, cfg);
    for (size_t r = 0; r < a.rows(); ++r) {
        double kept = 0.0;
        for (size_t c = 0; c < a.cols(); ++c)
            if (mask.get(r, c))
                kept += a(r, c);
        EXPECT_GE(kept, 0.9 - 1e-6) << "row " << r;
    }
}

TEST(Prune, MassPerQueryIsMinimal)
{
    // Removing the smallest kept entry must drop the row below the
    // threshold: the kept set is minimal.
    const auto a = deitMap();
    SplitConquerConfig cfg;
    cfg.mode = PruneMode::MassPerQuery;
    cfg.massThreshold = 0.85;
    const auto mask = pruneAttention(a, cfg);
    for (size_t r = 0; r < a.rows(); ++r) {
        double kept = 0.0;
        float smallest = 1e9f;
        for (size_t c = 0; c < a.cols(); ++c) {
            if (mask.get(r, c)) {
                kept += a(r, c);
                smallest = std::min(smallest, a(r, c));
            }
        }
        EXPECT_LT(kept - smallest, 0.85 + 1e-6) << "row " << r;
    }
}

TEST(Prune, MassGlobalReachesThresholdOverall)
{
    const auto a = deitMap();
    SplitConquerConfig cfg;
    cfg.mode = PruneMode::MassGlobal;
    cfg.massThreshold = 0.8;
    const auto mask = pruneAttention(a, cfg);
    double kept = 0.0, total = 0.0;
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c) {
            total += a(r, c);
            if (mask.get(r, c))
                kept += a(r, c);
        }
    EXPECT_GE(kept / total, 0.8 - 1e-6);
}

TEST(Prune, HigherMassThresholdKeepsMore)
{
    const auto a = deitMap();
    SplitConquerConfig lo;
    lo.mode = PruneMode::MassPerQuery;
    lo.massThreshold = 0.5;
    SplitConquerConfig hi = lo;
    hi.massThreshold = 0.95;
    EXPECT_LT(pruneAttention(a, lo).nnz(),
              pruneAttention(a, hi).nnz());
}

TEST(Reorder, PermIsBijection)
{
    const auto a = deitMap(11, 1);
    const auto plan = splitConquer(a, targetCfg(0.9));
    std::vector<bool> seen(plan.tokens, false);
    for (uint32_t p : plan.perm) {
        ASSERT_LT(p, plan.tokens);
        ASSERT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Reorder, GlobalTokensFronted)
{
    const auto a = deitMap(11, 0); // deep layer: has global tokens
    SplitConquerConfig cfg = targetCfg(0.9);
    const auto mask0 = pruneAttention(a, cfg);
    const auto reo = reorderTokens(mask0, cfg);
    const double theta = effectiveDenseThreshold(mask0, cfg);
    // Every fronted token was a dense column of the original mask;
    // every remaining token was not.
    for (size_t i = 0; i < reo.numGlobalTokens; ++i)
        EXPECT_GT(mask0.nnzInCol(reo.perm[i]), theta);
    for (size_t i = reo.numGlobalTokens; i < reo.perm.size(); ++i)
        EXPECT_LE(mask0.nnzInCol(reo.perm[i]), theta);
}

TEST(Reorder, StableVariantKeepsRelativeOrder)
{
    const auto a = deitMap(11, 0);
    SplitConquerConfig cfg = targetCfg(0.9);
    cfg.literalSwapReorder = false;
    const auto mask0 = pruneAttention(a, cfg);
    const auto reo = reorderTokens(mask0, cfg);
    for (size_t i = reo.numGlobalTokens + 1; i < reo.perm.size(); ++i)
        EXPECT_LT(reo.perm[i - 1], reo.perm[i]);
}

TEST(Plan, PermutedMaskPreservesNnz)
{
    const auto a = deitMap();
    const auto cfg = targetCfg(0.9);
    const auto mask0 = pruneAttention(a, cfg);
    const auto plan = splitConquer(a, cfg);
    EXPECT_EQ(plan.mask.nnz(), mask0.nnz());
}

TEST(Plan, DenserSparserPartitionCoversMask)
{
    const auto a = deitMap(9, 2);
    const auto plan = splitConquer(a, targetCfg(0.9));
    size_t denser = 0;
    for (size_t c = 0; c < plan.numGlobalTokens; ++c)
        denser += plan.mask.nnzInCol(c);
    EXPECT_EQ(plan.denserNnz, denser);
    EXPECT_EQ(plan.denserNnz + plan.sparserNnz, plan.mask.nnz());
    EXPECT_EQ(plan.sparserCsc.nnz(), plan.sparserNnz);
}

TEST(Plan, SparserCscMatchesMaskSlice)
{
    const auto a = deitMap(8, 1);
    const auto plan = splitConquer(a, targetCfg(0.85));
    ASSERT_LT(plan.numGlobalTokens, plan.tokens);
    const auto slice =
        plan.mask.sliceCols(plan.numGlobalTokens, plan.tokens);
    EXPECT_EQ(plan.sparserCsc.toMask(), slice);
}

TEST(Plan, RetainedMassConsistent)
{
    const auto a = deitMap();
    const auto plan = splitConquer(a, targetCfg(0.9));
    EXPECT_GT(plan.retainedMass, 0.0);
    EXPECT_LE(plan.retainedMass, 1.0 + 1e-9);
    // Keeping the top 10% of entries of a diagonal+global map must
    // retain well over half the mass.
    EXPECT_GT(plan.retainedMass, 0.5);
}

TEST(Plan, DenserRegionDenserThanSparser)
{
    const auto a = deitMap(11, 3);
    const auto plan = splitConquer(a, targetCfg(0.9));
    if (plan.numGlobalTokens == 0 ||
        plan.numGlobalTokens == plan.tokens) {
        GTEST_SKIP() << "degenerate split";
    }
    const double denser_density =
        static_cast<double>(plan.denserNnz) /
        static_cast<double>(plan.numGlobalTokens * plan.tokens);
    const double sparser_density =
        static_cast<double>(plan.sparserNnz) /
        static_cast<double>((plan.tokens - plan.numGlobalTokens) *
                            plan.tokens);
    EXPECT_GT(denser_density, 3.0 * sparser_density);
}

TEST(Plan, PruneOnlyHasIdentityPermAndNoGlobals)
{
    const auto a = deitMap();
    const auto plan = pruneOnly(a, targetCfg(0.9));
    EXPECT_EQ(plan.numGlobalTokens, 0u);
    for (uint32_t i = 0; i < plan.perm.size(); ++i)
        EXPECT_EQ(plan.perm[i], i);
    EXPECT_EQ(plan.denserNnz, 0u);
    EXPECT_EQ(plan.sparserNnz, plan.mask.nnz());
}

TEST(Plan, ReorderOnlyKeepsEverything)
{
    const auto a = deitMap(10, 0);
    const auto plan = reorderOnly(a, targetCfg(0.9));
    EXPECT_EQ(plan.mask.nnz(), plan.tokens * plan.tokens);
    EXPECT_DOUBLE_EQ(plan.sparsity, 0.0);
    EXPECT_NEAR(plan.retainedMass, 1.0, 1e-9);
    EXPECT_GT(plan.numGlobalTokens, 0u);
}

TEST(Plan, ReorderingImprovesRegularity)
{
    // After reordering, the leading-column block must be much denser
    // than the mask average (the Fig. 8 "clustered dense block").
    const auto a = deitMap(11, 0);
    const auto plan = splitConquer(a, targetCfg(0.9));
    if (plan.numGlobalTokens == 0)
        GTEST_SKIP() << "no global tokens in this head";
    const auto prof = sparse::profileMask(
        plan.mask, 10, 0.3, plan.numGlobalTokens);
    EXPECT_GT(prof.firstBlockDensity, 3.0 * prof.density);
}

/** Sparsity sweep: the plan must track the requested ratio. */
class SparsitySweep : public ::testing::TestWithParam<double>
{};

TEST_P(SparsitySweep, PlanSparsityMatchesTarget)
{
    const double target = GetParam();
    const auto a = deitMap(5, 1);
    const auto plan = splitConquer(a, targetCfg(target));
    // Row-quantized: 197 columns => +-1/197 resolution.
    EXPECT_NEAR(plan.sparsity, target, 0.01);
}

TEST_P(SparsitySweep, RetainedMassDecreasesWithSparsity)
{
    const double target = GetParam();
    const auto a = deitMap(5, 1);
    const auto lo = splitConquer(a, targetCfg(target));
    if (target + 0.05 < 1.0) {
        const auto hi = splitConquer(a, targetCfg(target + 0.05));
        EXPECT_GE(lo.retainedMass + 1e-9, hi.retainedMass);
    }
}

INSTANTIATE_TEST_SUITE_P(Ratios, SparsitySweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9,
                                           0.95));

TEST(Reorder, IdempotentOnReorderedMap)
{
    // Re-running split&conquer on the already-permuted map must
    // find the same number of global tokens and an equivalent
    // partition (the algorithm is a fixed point on its own output).
    const auto a = deitMap(11, 0);
    const auto cfg = targetCfg(0.9);
    const auto first = splitConquer(a, cfg);

    const linalg::Matrix a_perm = [&] {
        linalg::Matrix p(a.rows(), a.cols());
        for (size_t r = 0; r < a.rows(); ++r)
            for (size_t c = 0; c < a.cols(); ++c)
                p(r, c) = a(first.perm[r], first.perm[c]);
        return p;
    }();
    const auto second = splitConquer(a_perm, cfg);
    EXPECT_EQ(second.numGlobalTokens, first.numGlobalTokens);
    EXPECT_EQ(second.mask.nnz(), first.mask.nnz());
    EXPECT_EQ(second.denserNnz, first.denserNnz);
}

TEST(Prune, GlobalAndPerQueryAgreeOnTotalMassKept)
{
    // Both mass criteria keep >= theta_p of total mass; the global
    // variant does it with the fewest entries overall.
    const auto a = deitMap(6, 2);
    SplitConquerConfig per_query;
    per_query.mode = PruneMode::MassPerQuery;
    per_query.massThreshold = 0.9;
    SplitConquerConfig global = per_query;
    global.mode = PruneMode::MassGlobal;
    const auto m_pq = pruneAttention(a, per_query);
    const auto m_gl = pruneAttention(a, global);
    EXPECT_LE(m_gl.nnz(), m_pq.nnz() + a.rows());
}

TEST(Prune, PerQueryNeverLeavesEmptyRows)
{
    const auto a = deitMap(0, 0);
    SplitConquerConfig cfg;
    cfg.mode = PruneMode::MassPerQuery;
    cfg.massThreshold = 0.5;
    const auto mask = pruneAttention(a, cfg);
    for (size_t r = 0; r < mask.rows(); ++r)
        EXPECT_GE(mask.nnzInRow(r), 1u) << "row " << r;
}

TEST(Plan, EffectiveThresholdCapsForDenseMasks)
{
    // A fully dense mask must classify every column as global.
    const auto a = deitMap(3, 0);
    const auto plan = splitConquer(a, targetCfg(0.0));
    EXPECT_EQ(plan.numGlobalTokens, plan.tokens);
    EXPECT_EQ(plan.sparserNnz, 0u);
}

} // namespace
} // namespace vitcod::core
