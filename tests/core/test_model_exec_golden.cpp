/**
 * @file
 * Golden-trace regression fixtures: a pinned tiny model is built
 * and executed under a pinned engine configuration, and the
 * resulting (layer 0, head 0) mask plus the whole ExecTrace are
 * compared against serialized goldens in tests/data/. Everything
 * structural — mask bits, shapes, per-head nnz / global-token
 * counts, MACs, engine dispatch counters — must match exactly;
 * wall times are ignored (structurallyEqual).
 *
 * Regenerate after an intentional change with
 *
 *     core_test_model_exec_golden --update-goldens
 *
 * which rewrites the files in the source tree (the build embeds
 * VITCOD_TEST_DATA_DIR) and then re-runs the comparison against
 * them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "core/model_exec/model_executor.h"
#include "core/pipeline.h"
#include "linalg/engine/thread_pool.h"
#include "sparse/mask_io.h"
#include "support/temp_path.h"

namespace vitcod::core::model_exec {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

constexpr const char *kMaskGolden = "model_exec_mask_l0h0.pbm";
constexpr const char *kTraceGolden = "model_exec_trace.golden";

/** The pinned fixture: model, plan, engine config, input. */
struct Fixture
{
    model::VitModelConfig model;
    core::ModelPlan plan;
    linalg::engine::ThreadPool pool{2};
    linalg::engine::KernelEngine engine;
    ExecTrace trace;

    Fixture()
        : model(makeModel()),
          plan(buildModelPlan(model, makePipelineConfig(0.9, false))),
          // ISA pinned to Scalar: the golden trace embeds per-ISA
          // dispatch counters, and the fixture must produce the
          // same ones on every host the suite runs on.
          engine({.tier = linalg::engine::KernelTier::Optimized,
                  .isa = linalg::engine::IsaLevel::Scalar,
                  .rowPanel = 8,
                  .minParallelMacs = 1},
                 &pool)
    {
        Rng rng(2024);
        ModelWeights w = ModelWeights::random(model, 0, 8, rng);
        ModelExecutor exec(&plan, std::move(w),
                           ExecutorConfig{.numClasses = 8}, &engine);
        std::vector<linalg::Matrix> inputs;
        for (size_t b = 0; b < 2; ++b)
            inputs.push_back(linalg::Matrix::randomNormal(
                32, model.stages[0].embedDim, rng));
        (void)exec.forwardBatch(inputs, &trace);
    }

    static model::VitModelConfig
    makeModel()
    {
        model::VitModelConfig m;
        m.name = "golden-tiny";
        m.stages = {{2, 32, 3, 8, 24, 2}};
        return m;
    }
};

TEST(ModelExecGolden, MaskMatchesCheckedInPbm)
{
    Fixture fx;
    const sparse::BitMask &mask = fx.plan.planOf(0, 0).mask;
    const std::string path = dataDir() + kMaskGolden;

    if (g_update_goldens)
        sparse::writePbmFile(path, mask, sparse::PbmFormat::Ascii);

    EXPECT_EQ(sparse::readPbmFile(path), mask)
        << "plan mask diverged from " << path
        << " (regenerate with --update-goldens if intentional)";
}

TEST(ModelExecGolden, MaskRoundTripsThroughMaskIo)
{
    Fixture fx;
    const sparse::BitMask &mask = fx.plan.planOf(0, 0).mask;
    // Full round-trip through both PBM flavors at a unique path.
    for (const auto fmt :
         {sparse::PbmFormat::Ascii, sparse::PbmFormat::Binary}) {
        const std::string path =
            test::uniqueTempPath("golden_mask.pbm");
        sparse::writePbmFile(path, mask, fmt);
        EXPECT_EQ(sparse::readPbmFile(path), mask);
        std::remove(path.c_str());
    }
}

TEST(ModelExecGolden, TraceMatchesCheckedInGolden)
{
    Fixture fx;
    const std::string path = dataDir() + kTraceGolden;

    if (g_update_goldens)
        fx.trace.writeFile(path);

    const ExecTrace golden = ExecTrace::readFile(path);
    std::string why;
    EXPECT_TRUE(structurallyEqual(fx.trace, golden, &why))
        << "trace diverged from " << path << ": " << why
        << " (regenerate with --update-goldens if intentional)";

    // Timings are machine-dependent but must be present and sane.
    EXPECT_GT(fx.trace.totalSeconds, 0.0);
    for (const LayerTrace &lt : fx.trace.layers)
        EXPECT_GE(lt.seconds(), 0.0);
}

TEST(ModelExecGolden, TraceSerializationRoundTrips)
{
    Fixture fx;
    std::stringstream ss;
    fx.trace.write(ss);
    const ExecTrace back = ExecTrace::read(ss);
    std::string why;
    EXPECT_TRUE(structurallyEqual(fx.trace, back, &why)) << why;
    EXPECT_EQ(back.model, fx.trace.model);
    EXPECT_DOUBLE_EQ(back.totalSeconds, fx.trace.totalSeconds);
}

TEST(ModelExecGolden, TraceWithoutHeadRecordsRoundTrips)
{
    // collectHeadTraces = false: per-head records absent while the
    // layer shape still says heads = 3 — the document must carry
    // its own head-record count to stay parseable.
    auto model = Fixture::makeModel();
    const auto plan =
        buildModelPlan(model, makePipelineConfig(0.9, false));
    Rng rng(5);
    const linalg::engine::KernelEngine eng(
        {.tier = linalg::engine::KernelTier::Optimized});
    ModelExecutor exec(
        &plan, ModelWeights::random(model, 0, 8, rng),
        ExecutorConfig{.numClasses = 8, .collectHeadTraces = false},
        &eng);
    ExecTrace trace;
    (void)exec.forward(
        linalg::Matrix::randomNormal(32, model.stages[0].embedDim,
                                     rng),
        &trace);
    ASSERT_TRUE(trace.layers[0].headTraces.empty());

    std::stringstream ss;
    trace.write(ss);
    const ExecTrace back = ExecTrace::read(ss);
    std::string why;
    EXPECT_TRUE(structurallyEqual(trace, back, &why)) << why;
    EXPECT_EQ(back.layers[0].heads, 3u);
    EXPECT_TRUE(back.layers[0].headTraces.empty());
}

} // namespace
} // namespace vitcod::core::model_exec

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::core::model_exec::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
