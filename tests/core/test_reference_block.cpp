/**
 * @file
 * Tests of the functional reference block: the sparse-plan path
 * must be exactly equivalent to dense under a full mask, close to
 * dense when the mask retains most attention mass, and numerically
 * consistent with the accelerator's permuted schedule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "core/reference_block.h"
#include "linalg/kernels.h"
#include "model/attention_gen.h"

namespace vitcod::core {
namespace {

model::StageConfig
tinyStage()
{
    // A reduced DeiT-Tiny-like stage keeps the test fast.
    return {1, 48, 3, 16, 48, 4};
}

linalg::Matrix
randomInput(const model::StageConfig &s, uint64_t seed)
{
    Rng rng(seed);
    return linalg::Matrix::randomNormal(s.tokens, s.embedDim, rng);
}

std::vector<SparseAttentionPlan>
plansFor(const model::StageConfig &s, double sparsity, uint64_t seed)
{
    Rng rng(seed);
    SplitConquerConfig sc;
    sc.mode = PruneMode::TargetSparsity;
    sc.targetSparsity = sparsity;
    std::vector<SparseAttentionPlan> plans;
    for (size_t head = 0; head < s.heads; ++head) {
        // Synthetic per-head attention statistics.
        linalg::Matrix a = linalg::Matrix::randomUniform(
            s.tokens, s.tokens, rng, 0.01f, 0.02f);
        for (size_t i = 0; i < s.tokens; ++i) {
            a(i, i) += 1.0f;
            if (i + 1 < s.tokens) {
                a(i, i + 1) += 0.5f;
                a(i + 1, i) += 0.5f;
            }
            a(i, 0) += 0.6f; // global column
        }
        plans.push_back(splitConquer(a, sc));
    }
    return plans;
}

TEST(ReferenceBlock, DenseForwardShapes)
{
    const auto s = tinyStage();
    Rng rng(1);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto y = blk.forwardDense(randomInput(s, 2));
    EXPECT_EQ(y.rows(), s.tokens);
    EXPECT_EQ(y.cols(), s.embedDim);
}

TEST(ReferenceBlock, FullMaskPlanEqualsDense)
{
    const auto s = tinyStage();
    Rng rng(3);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto x = randomInput(s, 4);
    // sparsity 0 keeps every entry.
    const auto plans = plansFor(s, 0.0, 5);
    const double diff = linalg::maxAbsDiff(
        blk.forwardSparse(x, plans), blk.forwardDense(x));
    EXPECT_LT(diff, 1e-4);
}

TEST(ReferenceBlock, ModerateSparsityStaysClose)
{
    const auto s = tinyStage();
    Rng rng(6);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto x = randomInput(s, 7);
    const auto dense = blk.forwardDense(x);
    const auto sparse = blk.forwardSparse(x, plansFor(s, 0.5, 8));
    // Output magnitudes are O(1); pruning half the (mostly tiny)
    // attention entries must perturb outputs only mildly.
    const double rel =
        linalg::maxAbsDiff(sparse, dense) /
        std::max(1.0, linalg::frobeniusNorm(dense) /
                          std::sqrt(static_cast<double>(
                              dense.rows() * dense.cols())));
    EXPECT_LT(rel, 1.0);
}

TEST(ReferenceBlock, SparserMasksDriftMonotonically)
{
    const auto s = tinyStage();
    Rng rng(9);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto x = randomInput(s, 10);
    const auto dense = blk.attentionDense(x);
    double prev = 0.0;
    for (double sp : {0.0, 0.5, 0.9}) {
        const auto sparse =
            blk.attentionSparse(x, plansFor(s, sp, 11));
        const double diff = linalg::maxAbsDiff(sparse, dense);
        EXPECT_GE(diff + 1e-6, prev);
        prev = diff;
    }
}

TEST(ReferenceBlock, PermutationInvariance)
{
    // The same mask executed with literal-swap vs stable reordering
    // (different permutations) must produce identical outputs.
    const auto s = tinyStage();
    Rng rng(12);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto x = randomInput(s, 13);

    Rng gen_rng(14);
    linalg::Matrix a = linalg::Matrix::randomUniform(
        s.tokens, s.tokens, gen_rng, 0.01f, 0.02f);
    for (size_t i = 0; i < s.tokens; ++i) {
        a(i, i) += 1.0f;
        a(i, 0) += 0.6f;
    }
    SplitConquerConfig literal;
    literal.mode = PruneMode::TargetSparsity;
    literal.targetSparsity = 0.6;
    SplitConquerConfig stable = literal;
    stable.literalSwapReorder = false;

    std::vector<SparseAttentionPlan> p1(s.heads,
                                        splitConquer(a, literal));
    std::vector<SparseAttentionPlan> p2(s.heads,
                                        splitConquer(a, stable));
    const double diff = linalg::maxAbsDiff(
        blk.attentionSparse(x, p1), blk.attentionSparse(x, p2));
    EXPECT_LT(diff, 1e-4);
}

TEST(ReferenceBlock, WorksWithPipelinePlans)
{
    // End-to-end: plans from the real pipeline drive the functional
    // block for a DeiT-Tiny layer.
    const auto m = model::deitTiny();
    const auto plan =
        buildModelPlan(m, makePipelineConfig(0.9, true));
    const auto &stage = m.stages[0];
    Rng rng(15);
    const ReferenceBlock blk(stage, BlockWeights::random(stage, rng));
    const auto x = randomInput(stage, 16);

    std::vector<SparseAttentionPlan> plans;
    for (size_t head = 0; head < stage.heads; ++head)
        plans.push_back(plan.planOf(5, head));
    const auto y = blk.forwardSparse(x, plans);
    EXPECT_EQ(y.rows(), stage.tokens);
    // Finite outputs everywhere.
    for (size_t r = 0; r < y.rows(); ++r)
        for (size_t c = 0; c < y.cols(); ++c)
            ASSERT_TRUE(std::isfinite(y(r, c)));
}

TEST(ReferenceBlockDeath, PlanCountMismatchPanics)
{
    const auto s = tinyStage();
    Rng rng(17);
    const ReferenceBlock blk(s, BlockWeights::random(s, rng));
    const auto x = randomInput(s, 18);
    std::vector<SparseAttentionPlan> too_few(
        1, plansFor(s, 0.5, 19)[0]);
    EXPECT_DEATH(blk.attentionSparse(x, too_few), "one plan per head");
}

} // namespace
} // namespace vitcod::core
