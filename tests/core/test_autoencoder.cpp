/**
 * @file
 * Tests of the auto-encoder module: shape plumbing, PCA optimum,
 * SGD convergence (the Fig. 9(b)/18 training behavior) and the
 * head-redundancy hypothesis.
 */

#include <gtest/gtest.h>

#include "core/autoencoder.h"
#include "linalg/kernels.h"

namespace vitcod::core {
namespace {

TEST(AutoEncoder, ShapePlumbing)
{
    AutoEncoder ae({12, 6, 1});
    Rng rng(2);
    const linalg::Matrix x = linalg::Matrix::randomNormal(50, 12, rng);
    const auto z = ae.encode(x);
    EXPECT_EQ(z.rows(), 50u);
    EXPECT_EQ(z.cols(), 6u);
    const auto xh = ae.decode(z);
    EXPECT_EQ(xh.rows(), 50u);
    EXPECT_EQ(xh.cols(), 12u);
    EXPECT_DOUBLE_EQ(ae.compressionRatio(), 0.5);
}

TEST(AutoEncoder, SynthDataHasRequestedShape)
{
    Rng rng(3);
    const auto x = synthesizeHeadData(100, 8, 3, 0.1, rng);
    EXPECT_EQ(x.rows(), 100u);
    EXPECT_EQ(x.cols(), 8u);
}

TEST(AutoEncoder, SynthDataIsLowRankWhenNoiseless)
{
    // With rank 2 and no noise, PCA with 2 components reconstructs
    // almost exactly.
    Rng rng(4);
    const auto x = synthesizeHeadData(400, 10, 2, 0.0, rng);
    AutoEncoder ae({10, 2, 5});
    ae.fitPca(x);
    EXPECT_LT(ae.relativeError(x), 1e-3);
}

TEST(AutoEncoder, PcaHalvingRecoversRedundantHeads)
{
    // The paper's hypothesis: heads are redundant, so h -> h/2
    // compression is almost lossless. latent rank 4 < bottleneck 6.
    Rng rng(5);
    const auto x = synthesizeHeadData(2000, 12, 4, 0.05, rng);
    AutoEncoder ae({12, 6, 6});
    ae.fitPca(x);
    EXPECT_LT(ae.relativeError(x), 0.15);
}

TEST(AutoEncoder, CannotBeatRankLimit)
{
    // latent rank 8 > bottleneck 2: reconstruction must stay bad.
    Rng rng(6);
    const auto x = synthesizeHeadData(1000, 8, 8, 0.0, rng);
    AutoEncoder ae({8, 2, 7});
    ae.fitPca(x);
    EXPECT_GT(ae.relativeError(x), 0.4);
}

TEST(AutoEncoder, FullWidthPcaIsLossless)
{
    Rng rng(7);
    const auto x = synthesizeHeadData(300, 6, 6, 0.2, rng);
    AutoEncoder ae({6, 6, 8});
    ae.fitPca(x);
    EXPECT_LT(ae.relativeError(x), 1e-4);
}

TEST(AutoEncoder, TrainingLossDecreases)
{
    Rng rng(8);
    const auto x = synthesizeHeadData(1024, 12, 4, 0.05, rng);
    AutoEncoder ae({12, 6, 9});
    AeTrainConfig tc;
    tc.epochs = 30;
    tc.batchSize = 128;
    const AeTrainTrajectory traj = ae.trainSgd(x, tc);
    ASSERT_EQ(traj.points.size(), 30u);
    EXPECT_LT(traj.points.back().reconLoss,
              0.2 * traj.points.front().reconLoss);
}

TEST(AutoEncoder, TrainingApproachesPcaOptimum)
{
    Rng rng(9);
    const auto x = synthesizeHeadData(1024, 8, 3, 0.05, rng);

    AutoEncoder pca({8, 4, 10});
    pca.fitPca(x);
    const double pca_mse = pca.reconstructionMse(x);

    AutoEncoder sgd({8, 4, 10});
    AeTrainConfig tc;
    tc.epochs = 120;
    tc.batchSize = 128;
    sgd.trainSgd(x, tc);
    const double sgd_mse = sgd.reconstructionMse(x);

    // PCA is the linear optimum; Adam should get within 2x of it.
    EXPECT_GE(sgd_mse, pca_mse - 1e-9);
    EXPECT_LT(sgd_mse, std::max(2.0 * pca_mse, 1e-4));
}

TEST(AutoEncoder, TrainingDeterministic)
{
    Rng rng(10);
    const auto x = synthesizeHeadData(512, 6, 2, 0.1, rng);
    AutoEncoder a({6, 3, 11});
    AutoEncoder b({6, 3, 11});
    AeTrainConfig tc;
    tc.epochs = 5;
    const auto ta = a.trainSgd(x, tc);
    const auto tb = b.trainSgd(x, tc);
    for (size_t i = 0; i < ta.points.size(); ++i)
        EXPECT_DOUBLE_EQ(ta.points[i].reconLoss,
                         tb.points[i].reconLoss);
}

TEST(AutoEncoder, TrajectoryFinalLoss)
{
    AeTrainTrajectory t;
    EXPECT_DOUBLE_EQ(t.finalLoss(), 0.0);
    t.points.push_back({0, 5.0});
    t.points.push_back({1, 2.0});
    EXPECT_DOUBLE_EQ(t.finalLoss(), 2.0);
}

TEST(AutoEncoder, RelativeErrorOfZeroDataIsZero)
{
    AutoEncoder ae({4, 2, 12});
    linalg::Matrix x(10, 4);
    EXPECT_DOUBLE_EQ(ae.relativeError(x), 0.0);
}

/** Compression-ratio sweep mirroring the paper's 50% default. */
class CompressionSweep : public ::testing::TestWithParam<size_t>
{};

TEST_P(CompressionSweep, MoreBottleneckLessError)
{
    const size_t c = GetParam();
    Rng rng(13);
    const auto x = synthesizeHeadData(800, 12, 5, 0.05, rng);
    AutoEncoder small({12, c, 14});
    AutoEncoder big({12, c + 2, 14});
    small.fitPca(x);
    big.fitPca(x);
    EXPECT_GE(small.relativeError(x) + 1e-9, big.relativeError(x));
}

INSTANTIATE_TEST_SUITE_P(Bottlenecks, CompressionSweep,
                         ::testing::Values(2, 4, 6, 8));

} // namespace
} // namespace vitcod::core
