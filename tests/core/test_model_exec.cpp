/**
 * @file
 * Differential full-model tests: ModelExecutor (Optimized engine,
 * multi-threaded) against an independent layer-by-layer scalar
 * oracle — patch-embed GEMM, ReferenceBlock::forwardSparse per
 * layer on a Reference-pinned engine, scalar pooling/LayerNorm/
 * classifier — across randomized configs (layers 2/4/12, heads
 * 3/6, sparsity 0.50-0.98, batch 1-4). Logits must agree within a
 * per-element ulp budget, repeated parallel runs must be bitwise
 * identical, and the BufferArena must never grow after its
 * reservation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/model_exec/model_executor.h"
#include "core/pipeline.h"
#include "core/reference_block.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/kernels.h"

namespace vitcod::core::model_exec {
namespace {

using linalg::Matrix;
using linalg::engine::KernelTier;
using linalg::engine::KernelEngine;
using linalg::engine::ThreadPool;

/** ulp distance between two finite floats (huge when signs differ). */
uint64_t
ulpDiff(float a, float b)
{
    if (a == b)
        return 0;
    int32_t ia, ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    if ((ia < 0) != (ib < 0))
        return UINT64_MAX;
    return static_cast<uint64_t>(
        std::abs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib)));
}

/**
 * Whole-model budget: float error compounds per layer (the engine's
 * per-kernel budget is 4096 ulps), so the allowance scales with
 * depth; values cancelling toward zero get a small absolute band.
 */
void
expectLogitsClose(const Matrix &got, const Matrix &want,
                  size_t layers, const char *what)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    const uint64_t max_ulps = 4096 * layers;
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c) {
            const float a = got(r, c);
            const float b = want(r, c);
            if (std::abs(a - b) <= 1e-4f)
                continue;
            EXPECT_LE(ulpDiff(a, b), max_ulps)
                << what << " (" << r << "," << c << "): " << a
                << " vs " << b;
        }
}

/** Single-stage test model; embedDim = heads * headDim. */
model::VitModelConfig
testModel(size_t layers, size_t heads, size_t tokens,
          size_t head_dim = 8)
{
    model::VitModelConfig m;
    m.name = "test-model";
    m.stages = {{layers, tokens, heads, head_dim, heads * head_dim,
                 2}};
    return m;
}

std::vector<SparseAttentionPlan>
layerPlans(const core::ModelPlan &plan, size_t layer, size_t heads)
{
    std::vector<SparseAttentionPlan> plans;
    for (size_t h = 0; h < heads; ++h)
        plans.push_back(plan.planOf(layer, h));
    return plans;
}

Matrix
scalarLayerNorm(const Matrix &x, const std::vector<float> &gamma,
                const std::vector<float> &beta)
{
    Matrix out(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        double mean = 0.0;
        for (size_t c = 0; c < x.cols(); ++c)
            mean += x(r, c);
        mean /= static_cast<double>(x.cols());
        double var = 0.0;
        for (size_t c = 0; c < x.cols(); ++c) {
            const double d = x(r, c) - mean;
            var += d * d;
        }
        var /= static_cast<double>(x.cols());
        const double inv = 1.0 / std::sqrt(var + 1e-6);
        for (size_t c = 0; c < x.cols(); ++c)
            out(r, c) = static_cast<float>(
                (x(r, c) - mean) * inv * gamma[c] + beta[c]);
    }
    return out;
}

/** Independent scalar pooling (same grouping rule as the executor,
 *  reimplemented). */
Matrix
scalarPoolTokens(const Matrix &x, size_t n_new)
{
    Matrix out(n_new, x.cols());
    for (size_t i = 0; i < n_new; ++i) {
        const size_t r0 = i * x.rows() / n_new;
        const size_t r1 = (i + 1) * x.rows() / n_new;
        for (size_t c = 0; c < x.cols(); ++c) {
            float sum = 0.0f;
            for (size_t r = r0; r < r1; ++r)
                sum += x(r, c);
            out(i, c) =
                sum / static_cast<float>(r1 - r0);
        }
    }
    return out;
}

/**
 * The oracle: layer-by-layer scalar forward using ReferenceBlock on
 * a Reference-pinned engine, with scalar patch-embed, stage pooling
 * and classifier.
 */
Matrix
oracleForward(const core::ModelPlan &plan, const ModelWeights &w,
              const Matrix &patches, size_t num_classes)
{
    static const KernelEngine ref_eng{
        {.tier = KernelTier::Reference}};
    const model::VitModelConfig &m = plan.model;

    Matrix x = linalg::gemm(patches, w.patchEmbed);
    size_t stage = 0;
    size_t stage_first = 0;
    for (size_t layer = 0; layer < m.totalLayers(); ++layer) {
        while (layer >= stage_first + m.stages[stage].layers) {
            stage_first += m.stages[stage].layers;
            ++stage;
            x = linalg::gemm(
                scalarPoolTokens(x, m.stages[stage].tokens),
                w.stageProj[stage - 1]);
        }
        const model::StageConfig &s = m.stages[stage];
        const ReferenceBlock block(s, w.blocks[layer], &ref_eng);
        x = block.forwardSparse(x, layerPlans(plan, layer, s.heads));
    }

    const Matrix normed =
        scalarLayerNorm(x, w.lnFinalGamma, w.lnFinalBeta);
    Matrix pooled(1, normed.cols());
    for (size_t c = 0; c < normed.cols(); ++c) {
        double sum = 0.0;
        for (size_t r = 0; r < normed.rows(); ++r)
            sum += normed(r, c);
        pooled(0, c) =
            static_cast<float>(sum) /
            static_cast<float>(normed.rows());
    }
    (void)num_classes;
    return linalg::gemm(pooled, w.classifier);
}

struct DiffCase
{
    size_t layers;
    size_t heads;
    size_t tokens;
    double sparsity;
    size_t batch;
};

class ModelExecDifferential
    : public ::testing::TestWithParam<DiffCase>
{};

TEST_P(ModelExecDifferential, MatchesScalarOracle)
{
    const DiffCase c = GetParam();
    const auto m = testModel(c.layers, c.heads, c.tokens);
    const auto plan =
        buildModelPlan(m, makePipelineConfig(c.sparsity, false));

    Rng rng(97);
    const size_t num_classes = 16;
    const ExecutorConfig ecfg{.numClasses = num_classes};
    ModelWeights w =
        ModelWeights::random(m, 0, num_classes, rng);

    ThreadPool pool(4);
    const KernelEngine opt({.tier = KernelTier::Optimized,
                            .rowPanel = 8,
                            .minParallelMacs = 1},
                           &pool);
    ModelExecutor exec(&plan, std::move(w), ecfg, &opt);

    std::vector<Matrix> inputs;
    for (size_t b = 0; b < c.batch; ++b)
        inputs.push_back(Matrix::randomNormal(
            c.tokens, m.stages[0].embedDim, rng));

    ExecTrace trace;
    const auto logits = exec.forwardBatch(inputs, &trace);
    ASSERT_EQ(logits.size(), c.batch);

    for (size_t b = 0; b < c.batch; ++b) {
        const Matrix want = oracleForward(plan, exec.weights(),
                                          inputs[b], num_classes);
        expectLogitsClose(logits[b], want, c.layers, "logits");
    }

    // Trace structure reflects the model and the work done.
    EXPECT_EQ(trace.batch, c.batch);
    ASSERT_EQ(trace.layers.size(), c.layers);
    EXPECT_GT(trace.totalMacs, 0u);
    EXPECT_GT(trace.dispatch.gemmOptimized, 0u);
    EXPECT_EQ(trace.dispatch.gemmReference, 0u);
    for (const LayerTrace &lt : trace.layers) {
        EXPECT_EQ(lt.tokens, c.tokens);
        ASSERT_EQ(lt.headTraces.size(), c.heads);
        for (size_t h = 0; h < c.heads; ++h)
            EXPECT_EQ(lt.headTraces[h].maskNnz,
                      plan.planOf(lt.layer, h).mask.nnz());
    }

    // The arena never grew past its reservation.
    EXPECT_EQ(exec.arena().growths(), 0u);
    EXPECT_GT(exec.arena().footprintBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelExecDifferential,
    ::testing::Values(DiffCase{2, 3, 48, 0.50, 1},
                      DiffCase{2, 6, 48, 0.80, 3},
                      DiffCase{4, 6, 64, 0.90, 2},
                      DiffCase{12, 3, 40, 0.98, 4}),
    [](const auto &info) {
        const DiffCase &c = info.param;
        return "l" + std::to_string(c.layers) + "_h" +
               std::to_string(c.heads) + "_s" +
               std::to_string(
                   static_cast<int>(c.sparsity * 100)) +
               "_b" + std::to_string(c.batch);
    });

TEST(ModelExecutor, BitwiseDeterministicAcrossParallelRuns)
{
    const auto m = testModel(4, 6, 64);
    const auto plan = buildModelPlan(m, makePipelineConfig(0.9, false));
    Rng rng(11);
    const ExecutorConfig ecfg{.numClasses = 8};
    const ModelWeights w = ModelWeights::random(m, 0, 8, rng);
    const auto input =
        Matrix::randomNormal(64, m.stages[0].embedDim, rng);

    ThreadPool pool(4);
    const KernelEngine opt({.tier = KernelTier::Optimized,
                            .rowPanel = 8,
                            .minParallelMacs = 1},
                           &pool);

    ModelExecutor exec(&plan, ModelWeights(w), ecfg, &opt);
    const Matrix first = exec.forward(input);
    EXPECT_GT(opt.stats().parallelLaunches, 0u);
    for (int run = 0; run < 6; ++run) {
        const Matrix again = exec.forward(input);
        EXPECT_TRUE(again == first) << "run " << run;
    }

    // A fresh executor (fresh arena, warm engine) agrees bitwise too.
    ModelExecutor exec2(&plan, ModelWeights(w), ecfg, &opt);
    EXPECT_TRUE(exec2.forward(input) == first);
}

TEST(ModelExecutor, MaskScanHappensOnlyAtScheduleBuild)
{
    const auto m = testModel(2, 3, 48);
    const auto plan = buildModelPlan(m, makePipelineConfig(0.9, false));
    Rng rng(13);
    const ModelWeights w = ModelWeights::random(m, 0, 4, rng);

    const KernelEngine opt({.tier = KernelTier::Optimized});
    ModelExecutor exec(&plan, ModelWeights(w),
                       ExecutorConfig{.numClasses = 4}, &opt);

    std::vector<Matrix> inputs;
    for (size_t b = 0; b < 3; ++b)
        inputs.push_back(
            Matrix::randomNormal(48, m.stages[0].embedDim, rng));

    ExecTrace trace;
    (void)exec.forwardBatch(inputs, &trace);
    // Execution runs from the Schedule IR's prebuilt layouts: the
    // masks were scanned exactly once, at schedule build, and the
    // engine's structure cache sees zero traffic on the request
    // path — for any batch size.
    EXPECT_EQ(trace.dispatch.structureMisses, 0u);
    EXPECT_EQ(trace.dispatch.structureHits, 0u);
    EXPECT_GT(trace.dispatch.sddmmCsr + trace.dispatch.sddmmCsc, 0u);

    // The schedule the executor built carries every head's layout.
    const auto &sched = exec.schedule();
    ASSERT_EQ(sched.layers.size(), m.totalLayers());
    for (const auto &ls : sched.layers)
        for (const auto &hs : ls.heads)
            EXPECT_EQ(hs.maskNnz(),
                      plan.planOf(ls.layer, hs.head).mask.nnz());
}

TEST(ModelExecutor, MultiStagePyramidMatchesOracle)
{
    model::VitModelConfig m;
    m.name = "test-pyramid";
    m.stages = {{2, 48, 3, 8, 24, 2}, {2, 16, 3, 8, 24, 2}};
    const auto plan = buildModelPlan(m, makePipelineConfig(0.8, false));

    Rng rng(29);
    const size_t num_classes = 8;
    const ModelWeights w =
        ModelWeights::random(m, 0, num_classes, rng);
    const auto input =
        Matrix::randomNormal(48, m.stages[0].embedDim, rng);

    ThreadPool pool(2);
    const KernelEngine opt(
        {.tier = KernelTier::Optimized, .minParallelMacs = 1},
        &pool);
    ModelExecutor exec(&plan, ModelWeights(w),
                       ExecutorConfig{.numClasses = num_classes},
                       &opt);

    const Matrix got = exec.forward(input);
    const Matrix want =
        oracleForward(plan, exec.weights(), input, num_classes);
    expectLogitsClose(got, want, m.totalLayers(), "pyramid logits");
}

TEST(ModelExecutor, ForwardAndBatchAgreeBitwise)
{
    const auto m = testModel(2, 3, 48);
    const auto plan = buildModelPlan(m, makePipelineConfig(0.9, false));
    Rng rng(31);
    const ModelWeights w = ModelWeights::random(m, 0, 4, rng);
    const KernelEngine opt({.tier = KernelTier::Optimized});
    ModelExecutor exec(&plan, ModelWeights(w),
                       ExecutorConfig{.numClasses = 4}, &opt);

    std::vector<Matrix> inputs;
    for (size_t b = 0; b < 2; ++b)
        inputs.push_back(
            Matrix::randomNormal(48, m.stages[0].embedDim, rng));

    const auto batched = exec.forwardBatch(inputs);
    for (size_t b = 0; b < inputs.size(); ++b)
        EXPECT_TRUE(exec.forward(inputs[b]) == batched[b])
            << "sample " << b;
}

// Death tests fork; give them a pool-free local engine so no
// thread (shared ThreadPool included) is alive at fork time.
TEST(ModelExecutorDeath, MissingHeadPlanPanics)
{
    const KernelEngine eng({.tier = KernelTier::Reference});
    const auto m = testModel(2, 3, 32);
    auto plan = buildModelPlan(m, makePipelineConfig(0.9, false));
    plan.heads.pop_back();
    Rng rng(37);
    ModelWeights w = ModelWeights::random(m, 0, 4, rng);
    EXPECT_DEATH(ModelExecutor(&plan, std::move(w),
                               ExecutorConfig{.numClasses = 4}, &eng),
                 "missing plan");
}

TEST(ModelExecutorDeath, WrongInputShapePanics)
{
    const KernelEngine eng({.tier = KernelTier::Reference});
    const auto m = testModel(2, 3, 32);
    const auto plan = buildModelPlan(m, makePipelineConfig(0.9, false));
    Rng rng(41);
    ModelExecutor exec(&plan,
                       ModelWeights::random(m, 0, 4, rng),
                       ExecutorConfig{.numClasses = 4}, &eng);
    const auto bad = Matrix::randomNormal(7, 5, rng);
    EXPECT_DEATH((void)exec.forward(bad), "shape mismatch");
}

} // namespace
} // namespace vitcod::core::model_exec
