/**
 * @file
 * Tests of the per-action energy model.
 */

#include <gtest/gtest.h>

#include "sim/energy.h"

namespace vitcod::sim {
namespace {

TEST(Energy, ZeroActivityOnlyLeakage)
{
    EnergyModel em;
    const EnergyBreakdown e = em.compute(0, 0, 0, 0, 1000);
    EXPECT_DOUBLE_EQ(e.macPj, 0.0);
    EXPECT_DOUBLE_EQ(e.sramPj, 0.0);
    EXPECT_DOUBLE_EQ(e.dramPj, 0.0);
    EXPECT_GT(e.staticPj, 0.0);
}

TEST(Energy, ComponentsScaleLinearly)
{
    EnergyModel em;
    const EnergyBreakdown a = em.compute(1000, 100, 100, 100, 0);
    const EnergyBreakdown b = em.compute(2000, 200, 200, 200, 0);
    EXPECT_DOUBLE_EQ(b.macPj, 2.0 * a.macPj);
    EXPECT_DOUBLE_EQ(b.sramPj, 2.0 * a.sramPj);
    EXPECT_DOUBLE_EQ(b.dramPj, 2.0 * a.dramPj);
}

TEST(Energy, DramDominatesPerByte)
{
    // The premise of the AE module: a DRAM byte costs much more
    // than an SRAM byte.
    EnergyConfig cfg;
    EXPECT_GT(cfg.dramPjPerByte, 20.0 * cfg.sramReadPjPerByte);
}

TEST(Energy, LeakageMatchesWattsTimesTime)
{
    EnergyConfig cfg;
    cfg.leakageWattsCore = 0.1;
    cfg.coreFreqGhz = 0.5;
    EnergyModel em(cfg);
    // 5e8 cycles at 0.5 GHz = 1 s -> 0.1 J = 1e11 pJ.
    const EnergyBreakdown e = em.compute(0, 0, 0, 0, 500'000'000);
    EXPECT_NEAR(e.staticPj, 1e11, 1e5);
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyModel em;
    const EnergyBreakdown e =
        em.compute(12345, 678, 910, 1112, 1314);
    EXPECT_DOUBLE_EQ(e.totalPj(),
                     e.macPj + e.sramPj + e.dramPj + e.staticPj);
}

TEST(Energy, AccumulateOperator)
{
    EnergyBreakdown a{1.0, 2.0, 3.0, 4.0};
    EnergyBreakdown b{10.0, 20.0, 30.0, 40.0};
    a += b;
    EXPECT_DOUBLE_EQ(a.totalPj(), 110.0);
}

} // namespace
} // namespace vitcod::sim
