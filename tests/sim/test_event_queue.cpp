/**
 * @file
 * Tests of the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace vitcod::sim {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntilEmpty();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, TieBreakByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, 1);
    eq.schedule(5, [&] { order.push_back(2); }, 0);
    eq.schedule(5, [&] { order.push_back(3); }, 0);
    eq.runUntilEmpty();
    EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(EventQueue, HandlerMaySchedule)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(4, [&] { ++fired; });
    });
    const Tick end = eq.runUntilEmpty();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(end, 5u);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTick)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(10, [&] { eq.scheduleAfter(7, [&] { seen = eq.curTick(); }); });
    eq.runUntilEmpty();
    EXPECT_EQ(seen, 17u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntilEmpty();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenEmpty)
{
    EventQueue eq;
    eq.runUntil(100);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, ZeroDelayEventRunsAtSameTick)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.schedule(3, [&] {
        eq.scheduleAfter(0, [&] { ticks.push_back(eq.curTick()); });
    });
    eq.runUntilEmpty();
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_EQ(ticks[0], 3u);
}

TEST(EventQueue, ProcessedCount)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.schedule(i, [] {});
    eq.runUntilEmpty();
    EXPECT_EQ(eq.processedCount(), 10u);
}

TEST(EventQueue, SameTickInsertionOrderIsStable)
{
    // The pipelined model (sim/pipeline_model.h) relies on same-tick
    // events draining in insertion order: a completion handler that
    // kicks several follow-ups at the current tick must see them run
    // FIFO, or stall accounting becomes replay-dependent. Pin the
    // exact order under a dense same-tick cascade.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(0);
        // Handlers enqueue at the current tick, interleaved with a
        // higher-priority (lower value) latecomer.
        eq.scheduleAfter(0, [&] {
            order.push_back(1);
            eq.scheduleAfter(0, [&] { order.push_back(4); });
        });
        eq.scheduleAfter(0, [&] { order.push_back(2); }, 1);
        eq.scheduleAfter(0, [&] { order.push_back(3); });
    });
    eq.runUntilEmpty();
    // Priority 0 events run in insertion order (1, 3, then the
    // nested 4); the priority-1 event waits for all of them.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4, 2}));
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, SameTickFifoStress)
{
    // 1000 same-tick events across three priority classes: drain
    // order must be (priority, insertion seq) — i.e. a stable sort
    // of the insertion sequence, regardless of heap internals.
    EventQueue eq;
    std::vector<int> order;
    std::vector<int> expected;
    constexpr int kPerClass = 333;
    for (int pri = 0; pri < 3; ++pri)
        for (int i = 0; i < kPerClass; ++i)
            expected.push_back(pri * kPerClass + i);
    // Insert round-robin across priorities so heap insertion order
    // disagrees with drain order within every class.
    for (int i = 0; i < kPerClass; ++i)
        for (int pri = 0; pri < 3; ++pri) {
            const int id = pri * kPerClass + i;
            eq.schedule(5, [&order, id] { order.push_back(id); },
                        pri);
        }
    eq.runUntilEmpty();
    EXPECT_EQ(order, expected);
}

TEST(EventQueueDeath, SchedulingIntoPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runUntilEmpty();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}

} // namespace
} // namespace vitcod::sim
