/**
 * @file
 * Tests of the capacity-checked SRAM buffer.
 */

#include <gtest/gtest.h>

#include "sim/sram.h"

namespace vitcod::sim {
namespace {

SramConfig
smallBuf()
{
    SramConfig cfg;
    cfg.name = "test";
    cfg.capacity = 1024;
    cfg.wordBytes = 16;
    return cfg;
}

TEST(Sram, AllocateAndRelease)
{
    SramBuffer b(smallBuf());
    EXPECT_TRUE(b.fits(1024));
    b.allocate(600);
    EXPECT_EQ(b.used(), 600u);
    EXPECT_FALSE(b.fits(500));
    b.release(100);
    EXPECT_EQ(b.used(), 500u);
    b.releaseAll();
    EXPECT_EQ(b.used(), 0u);
}

TEST(Sram, PeakTracksHighWater)
{
    SramBuffer b(smallBuf());
    b.allocate(300);
    b.allocate(400);
    b.release(600);
    b.allocate(100);
    EXPECT_EQ(b.peakUsed(), 700u);
}

TEST(SramDeath, OverflowPanics)
{
    SramBuffer b(smallBuf());
    b.allocate(1000);
    EXPECT_DEATH(b.allocate(100), "overflow");
}

TEST(SramDeath, OverReleasePanics)
{
    SramBuffer b(smallBuf());
    b.allocate(10);
    EXPECT_DEATH(b.release(20), "more than allocated");
}

TEST(Sram, PortBandwidthCycles)
{
    SramBuffer b(smallBuf()); // 16 B/port/cycle, 1 port each way
    EXPECT_EQ(b.readCycles(16), 1u);
    EXPECT_EQ(b.readCycles(17), 2u);
    EXPECT_EQ(b.writeCycles(160), 10u);
}

TEST(Sram, MultiPortScalesBandwidth)
{
    SramConfig cfg = smallBuf();
    cfg.readPorts = 4;
    SramBuffer b(cfg);
    EXPECT_EQ(b.readCycles(64), 1u);
}

TEST(Sram, TrafficCounters)
{
    SramBuffer b(smallBuf());
    b.recordRead(100);
    b.recordWrite(40);
    b.recordRead(28);
    EXPECT_EQ(b.readBytes(), 128u);
    EXPECT_EQ(b.writeBytes(), 40u);
    b.resetStats();
    EXPECT_EQ(b.readBytes(), 0u);
}

TEST(Sram, PaperFloorplanBudgetsFitConcurrently)
{
    // The paper's floorplan: 128 KB act + 20 KB idx + 108 KB out +
    // 64 KB weights = 320 KB allocated without overflow.
    SramConfig cfg;
    cfg.capacity = 320 * 1024;
    SramBuffer b(cfg);
    b.allocate(128 * 1024);
    b.allocate(20 * 1024);
    b.allocate(108 * 1024);
    b.allocate(64 * 1024);
    EXPECT_EQ(b.used(), b.capacity());
    EXPECT_FALSE(b.fits(1));
}

} // namespace
} // namespace vitcod::sim
