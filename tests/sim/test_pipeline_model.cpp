/**
 * @file
 * Differential validation of the event-driven pipelined model
 * against the analytic simulator (docs/SIMULATOR.md):
 *
 *  - Stall-free configs (deep FIFOs, zero latency adders) price
 *    cycle-exactly equal to the analytic recurrence, across
 *    DeiT-Tiny/Small plans and sparsities 0.5-0.98, attention-only
 *    and end-to-end, at any bandwidth.
 *  - Constrained configs conserve cycles per stage
 *    (busy + stall + idle == total) and stall monotonically: deeper
 *    FIFOs or more bandwidth never increase cycles, and the
 *    analytic count is a lower bound on every config.
 *  - A seeded ~200-sample property sweep over random (FIFO depth,
 *    chunk size, stage latency, bandwidth) configs pins determinism
 *    and termination (a deadlocked machine dies on an internal
 *    retirement assert).
 *  - A golden per-stage stall breakdown of the pinned DeiT-Tiny@90%
 *    schedule under a constrained config, with the established
 *    --update-goldens flow:
 *
 *        sim_test_pipeline_model --update-goldens
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/vitcod_accel.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/schedule/builder.h"

namespace vitcod::accel {
namespace {

bool g_update_goldens = false;

std::string
dataDir()
{
#ifdef VITCOD_TEST_DATA_DIR
    return std::string(VITCOD_TEST_DATA_DIR) + "/";
#else
    return "tests/data/";
#endif
}

constexpr const char *kStatsGolden = "pipeline_stats.golden";

core::ModelPlan
planFor(const model::VitModelConfig &m, double sparsity, bool ae)
{
    return core::buildModelPlan(m,
                                core::makePipelineConfig(sparsity, ae));
}

core::schedule::ModelSchedule
scheduleFor(const ViTCoDConfig &cfg, const core::ModelPlan &plan,
            bool end_to_end)
{
    const core::schedule::ScheduleBuilder builder(
        {.hw = scheduleParams(cfg), .buildLayouts = false});
    return builder.build(plan, end_to_end);
}

/** FIFOs deep enough that only the structural two-bank gates bind:
 *  the machine must then reduce exactly to the analytic recurrence. */
sim::PipelineConfig
deepConfig()
{
    sim::PipelineConfig pc;
    pc.fetchFifoDepth = size_t{1} << 20;
    pc.writebackFifoDepth = size_t{1} << 20;
    return pc;
}

/** A deliberately tight machine: shallow FIFOs, fine chunks, real
 *  stage-fill latencies. */
sim::PipelineConfig
tightConfig()
{
    sim::PipelineConfig pc;
    pc.fetchFifoDepth = 2;
    pc.writebackFifoDepth = 1;
    pc.fifoChunkBytes = 1024;
    pc.fetchLatency = 8;
    pc.denserLatency = 4;
    pc.sparserLatency = 4;
    pc.writebackLatency = 8;
    return pc;
}

void
expectConserved(const sim::PipelineStats &ps)
{
    EXPECT_EQ(ps.fetch.total(), ps.totalCycles);
    EXPECT_EQ(ps.denser.total(), ps.totalCycles);
    EXPECT_EQ(ps.sparser.total(), ps.totalCycles);
    EXPECT_EQ(ps.writeback.total(), ps.totalCycles);
}

// ---------------------------------------------------------------------
// Satellite 1: differential equality and conservation.
// ---------------------------------------------------------------------

TEST(PipelineModel, StallFreeMatchesAnalyticExactly)
{
    const double sparsities[] = {0.5, 0.7, 0.9, 0.95, 0.98};
    for (const auto &m : {model::deitTiny(), model::deitSmall()}) {
        for (double s : sparsities) {
            ViTCoDConfig cfg;
            cfg.pipeline = deepConfig();
            const ViTCoDAccelerator acc(cfg);
            const auto plan = planFor(m, s, true);
            const auto sched = scheduleFor(cfg, plan, false);
            const RunStats a =
                acc.runSchedule(sched, sim::SimMode::Analytic);
            const RunStats p =
                acc.runSchedule(sched, sim::SimMode::Pipelined);
            EXPECT_EQ(a.cycles, p.cycles)
                << m.name << " @ " << s
                << ": pipelined diverged from analytic on a "
                   "stall-free config";
            // Deep FIFOs leave only the structural stalls the
            // analytic recurrence also pays (the two-bank gates on
            // fetch, the join imbalance on the lanes) — never a
            // blocked writeback port.
            EXPECT_EQ(p.pipeline.writeback.stall, 0u);
            expectConserved(p.pipeline);
        }
    }
}

TEST(PipelineModel, StallFreeMatchesAnalyticEndToEnd)
{
    ViTCoDConfig cfg;
    cfg.pipeline = deepConfig();
    const ViTCoDAccelerator acc(cfg);
    for (const auto &m : {model::deitTiny(), model::deitSmall()}) {
        const auto plan = planFor(m, 0.9, true);
        const auto sched = scheduleFor(cfg, plan, true);
        EXPECT_EQ(acc.runSchedule(sched, sim::SimMode::Analytic)
                      .cycles,
                  acc.runSchedule(sched, sim::SimMode::Pipelined)
                      .cycles)
            << m.name << " end-to-end";
    }
}

TEST(PipelineModel, StallFreeEqualityHoldsAtAnyBandwidth)
{
    // The reduction to the analytic recurrence is structural, not a
    // fluke of the default DRAM: equality must survive bandwidth
    // extremes in both directions.
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    for (double bw : {4.8, 12.8, 76.8, 614.4}) {
        ViTCoDConfig cfg;
        cfg.dram.bandwidthGBps = bw;
        cfg.pipeline = deepConfig();
        const ViTCoDAccelerator acc(cfg);
        const auto sched = scheduleFor(cfg, plan, false);
        EXPECT_EQ(acc.runSchedule(sched, sim::SimMode::Analytic)
                      .cycles,
                  acc.runSchedule(sched, sim::SimMode::Pipelined)
                      .cycles)
            << "bandwidth " << bw << " GB/s";
    }
}

TEST(PipelineModel, StallFreeEqualityWithMaskPrediction)
{
    // NLP mode adds the serial prediction pass as its own drained
    // group; the mode split must not change the sum.
    ViTCoDConfig cfg;
    cfg.dynamicMaskPrediction = true;
    cfg.pipeline = deepConfig();
    const ViTCoDAccelerator acc(cfg);
    const auto plan = planFor(model::bertBase(384), 0.9, true);
    const auto sched = scheduleFor(cfg, plan, false);
    const RunStats a = acc.runSchedule(sched, sim::SimMode::Analytic);
    const RunStats p = acc.runSchedule(sched, sim::SimMode::Pipelined);
    EXPECT_EQ(a.cycles, p.cycles);
    EXPECT_GT(a.preprocessSeconds, 0.0);
}

TEST(PipelineModel, ConstrainedConfigConservesPerStage)
{
    ViTCoDConfig cfg;
    cfg.dram.bandwidthGBps = 12.8; // starved
    cfg.pipeline = tightConfig();
    const ViTCoDAccelerator acc(cfg);
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    for (bool e2e : {false, true}) {
        const auto sched = scheduleFor(cfg, plan, e2e);
        const RunStats p =
            acc.runSchedule(sched, sim::SimMode::Pipelined);
        expectConserved(p.pipeline);
        EXPECT_GT(p.pipeline.items, 0u);
        EXPECT_GT(p.pipeline.events, 0u);
        EXPECT_GT(p.pipeline.fetchFifoHighWater, 0u);
    }
}

TEST(PipelineModel, BandwidthStarvedConfigReportsStalls)
{
    // Acceptance criterion: a bandwidth-starved machine must surface
    // nonzero stall cycles (the analytic model cannot see these).
    ViTCoDConfig cfg;
    cfg.dram.bandwidthGBps = 6.4;
    cfg.pipeline = tightConfig();
    const ViTCoDAccelerator acc(cfg);
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const auto sched = scheduleFor(cfg, plan, false);
    const RunStats a = acc.runSchedule(sched, sim::SimMode::Analytic);
    const RunStats p = acc.runSchedule(sched, sim::SimMode::Pipelined);
    EXPECT_GT(p.pipeline.stallCycles(), 0u);
    EXPECT_GT(p.pipeline.denser.stall, 0u);
    EXPECT_GT(p.cycles, a.cycles);
    // The analytic run must leave the pipeline report empty.
    EXPECT_EQ(a.pipeline, sim::PipelineStats{});
}

TEST(PipelineModel, MonotoneInFifoDepth)
{
    ViTCoDConfig base;
    base.dram.bandwidthGBps = 12.8;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const auto sched = scheduleFor(base, plan, false);
    Cycles prev = ~Cycles{0};
    for (size_t depth : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{64}, size_t{1} << 20}) {
        ViTCoDConfig cfg = base;
        cfg.pipeline.fetchFifoDepth = depth;
        cfg.pipeline.writebackFifoDepth = depth;
        cfg.pipeline.fifoChunkBytes = 1024;
        const ViTCoDAccelerator acc(cfg);
        const Cycles c =
            acc.runSchedule(sched, sim::SimMode::Pipelined).cycles;
        EXPECT_LE(c, prev)
            << "deepening FIFOs to " << depth
            << " chunks increased cycles";
        prev = c;
    }
    // The deepest point is stall-free and must meet the analytic
    // count exactly (not just bound it).
    const ViTCoDAccelerator acc(base);
    EXPECT_EQ(prev,
              acc.runSchedule(sched, sim::SimMode::Analytic).cycles);
}

TEST(PipelineModel, MonotoneInBandwidth)
{
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    Cycles prev = ~Cycles{0};
    for (double bw : {4.8, 9.6, 19.2, 38.4, 76.8, 153.6}) {
        ViTCoDConfig cfg;
        cfg.dram.bandwidthGBps = bw;
        cfg.pipeline = tightConfig();
        const ViTCoDAccelerator acc(cfg);
        const auto sched = scheduleFor(cfg, plan, false);
        const Cycles c =
            acc.runSchedule(sched, sim::SimMode::Pipelined).cycles;
        EXPECT_LE(c, prev) << "raising bandwidth to " << bw
                           << " GB/s increased cycles";
        prev = c;
    }
}

TEST(PipelineModel, LayerStatsCarryPipelineBreakdown)
{
    ViTCoDConfig cfg;
    cfg.pipeline = tightConfig();
    const ViTCoDAccelerator acc(cfg);
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const auto sched = scheduleFor(cfg, plan, false);
    ASSERT_FALSE(sched.layers.empty());
    const LayerAttentionStats st = acc.priceAttentionLayer(
        sched.layers.front(), sim::SimMode::Pipelined);
    EXPECT_EQ(st.pipe.items, 3u); // SDDMM, softmax, SpMM
    EXPECT_EQ(st.pipe.totalCycles, st.total);
    // Analytic pricing of the same layer leaves pipe empty.
    const LayerAttentionStats sa =
        acc.priceAttentionLayer(sched.layers.front());
    EXPECT_EQ(sa.pipe, sim::PipelineStats{});
}

// ---------------------------------------------------------------------
// Satellite 2: randomized-schedule property sweep.
// ---------------------------------------------------------------------

TEST(PipelineModel, RandomConfigPropertySweep)
{
    // ~200 random machines over one pinned schedule. Per sample:
    // termination (a wedged machine aborts on the internal
    // retirement assert), bitwise determinism across re-runs,
    // per-stage conservation, and the analytic lower bound.
    Rng rng(0x91e5'11fe'5eedULL);
    const ViTCoDConfig ref;
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const auto sched = scheduleFor(ref, plan, false);
    const double bws[] = {9.6, 19.2, 38.4, 76.8, 153.6};
    const Bytes chunks[] = {256, 1024, 4096, 16384};

    for (int sample = 0; sample < 200; ++sample) {
        ViTCoDConfig cfg;
        cfg.dram.bandwidthGBps = bws[rng.uniformInt(5)];
        cfg.pipeline.fetchFifoDepth = 1 + rng.uniformInt(64);
        cfg.pipeline.writebackFifoDepth = 1 + rng.uniformInt(64);
        cfg.pipeline.fifoChunkBytes = chunks[rng.uniformInt(4)];
        cfg.pipeline.fetchLatency = rng.uniformInt(33);
        cfg.pipeline.denserLatency = rng.uniformInt(33);
        cfg.pipeline.sparserLatency = rng.uniformInt(33);
        cfg.pipeline.writebackLatency = rng.uniformInt(33);
        const ViTCoDAccelerator acc(cfg);

        const RunStats a =
            acc.runSchedule(sched, sim::SimMode::Analytic);
        const RunStats p1 =
            acc.runSchedule(sched, sim::SimMode::Pipelined);
        const RunStats p2 =
            acc.runSchedule(sched, sim::SimMode::Pipelined);

        ASSERT_EQ(p1.pipeline, p2.pipeline)
            << "sample " << sample << ": nondeterministic replay";
        ASSERT_EQ(p1.cycles, p2.cycles);
        ASSERT_GE(p1.cycles, a.cycles)
            << "sample " << sample
            << ": pipelined beat the analytic lower bound";
        expectConserved(p1.pipeline);
    }
}

// ---------------------------------------------------------------------
// Satellite 3: golden per-stage stall breakdown.
// ---------------------------------------------------------------------

TEST(PipelineModel, GoldenStallBreakdown)
{
    // Pinned DeiT-Tiny @ 90% under the tight machine on a 19.2 GB/s
    // DRAM. A diff means the pipelined model's timing or accounting
    // changed and must be intentional.
    ViTCoDConfig cfg;
    cfg.dram.bandwidthGBps = 19.2;
    cfg.pipeline = tightConfig();
    const ViTCoDAccelerator acc(cfg);
    const auto plan = planFor(model::deitTiny(), 0.9, true);
    const auto sched = scheduleFor(cfg, plan, false);
    const RunStats p = acc.runSchedule(sched, sim::SimMode::Pipelined);
    const std::string got = p.pipeline.str();
    EXPECT_GT(p.pipeline.stallCycles(), 0u)
        << "golden config must actually stall";

    const std::string path = dataDir() + kStatsGolden;
    if (g_update_goldens) {
        std::ofstream out(path);
        out << got;
        ASSERT_TRUE(out.good()) << "failed to write " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), got)
        << "stall breakdown diverged from " << path
        << " (regenerate with --update-goldens if intentional)";
}

} // namespace
} // namespace vitcod::accel

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--update-goldens")
            vitcod::accel::g_update_goldens = true;
    return RUN_ALL_TESTS();
}
