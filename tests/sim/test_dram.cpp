/**
 * @file
 * Tests of the DRAM channel model.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"

namespace vitcod::sim {
namespace {

TEST(Dram, PaperBandwidthBytesPerCycle)
{
    // 76.8 GB/s at 500 MHz core = 153.6 B/cycle.
    DramModel d;
    EXPECT_NEAR(d.bytesPerCycle(), 153.6, 1e-9);
}

TEST(Dram, StreamCyclesMatchesBandwidth)
{
    DramModel d;
    // 1 MiB quantized to bursts / 153.6 B/cyc.
    const Cycles c = d.streamCycles(1 << 20);
    EXPECT_NEAR(static_cast<double>(c), (1 << 20) / 153.6, 2.0);
}

TEST(Dram, ZeroBytesZeroCycles)
{
    DramModel d;
    EXPECT_EQ(d.streamCycles(0), 0u);
    EXPECT_EQ(d.gatherCycles(0, 128), 0u);
}

TEST(Dram, BurstQuantization)
{
    // Use a 1 B/cycle channel so quantization is visible in cycles.
    DramConfig cfg;
    cfg.bandwidthGBps = 0.5;
    cfg.coreFreqGhz = 0.5;
    DramModel d(cfg);
    EXPECT_EQ(d.streamCycles(1), d.streamCycles(64));
    EXPECT_EQ(d.streamCycles(64), 64u);
    EXPECT_EQ(d.streamCycles(65), 128u);
}

TEST(Dram, GatherPaysPenaltyOverStream)
{
    DramModel d;
    // 1000 grains of 128 B scattered vs the same bytes streamed.
    const Cycles gather = d.gatherCycles(1000, 128);
    const Cycles stream = d.streamCycles(1000 * 128);
    EXPECT_GT(gather, stream);
}

TEST(Dram, GatherRoundsGrainToBurst)
{
    DramModel d;
    // 16 B grains are charged as full 64 B bursts: 4x the cycles of
    // an equal-byte stream (plus penalty).
    const Cycles g16 = d.gatherCycles(100, 16);
    const Cycles g64 = d.gatherCycles(100, 64);
    EXPECT_EQ(g16, g64);
}

TEST(Dram, CyclesScaleWithBandwidth)
{
    DramConfig fast;
    fast.bandwidthGBps = 153.6; // double the default
    DramModel d_fast(fast);
    DramModel d_base;
    const Bytes n = 10 << 20;
    EXPECT_NEAR(static_cast<double>(d_base.streamCycles(n)),
                2.0 * static_cast<double>(d_fast.streamCycles(n)),
                4.0);
}

TEST(Dram, TrafficAccounting)
{
    DramModel d;
    d.recordRead(100);
    d.recordRead(50);
    d.recordWrite(30);
    EXPECT_EQ(d.readBytes(), 150u);
    EXPECT_EQ(d.writeBytes(), 30u);
    EXPECT_EQ(d.totalBytes(), 180u);
    d.resetStats();
    EXPECT_EQ(d.totalBytes(), 0u);
}

} // namespace
} // namespace vitcod::sim
