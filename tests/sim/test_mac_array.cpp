/**
 * @file
 * Tests of the MAC-line array model.
 */

#include <gtest/gtest.h>

#include "sim/mac_array.h"

namespace vitcod::sim {
namespace {

TEST(MacArray, PaperConfigTotals)
{
    MacArrayConfig cfg;
    EXPECT_EQ(cfg.totalMacs(), 512u); // 64 lines x 8 MACs
}

TEST(MacArray, CyclesForExactFit)
{
    MacArray arr;
    // 512 MACs on 64 lines: one cycle.
    EXPECT_EQ(arr.cyclesFor(512, 64), 1u);
    EXPECT_EQ(arr.cyclesFor(513, 64), 2u);
    EXPECT_EQ(arr.cyclesFor(512, 32), 2u);
}

TEST(MacArray, FewerLinesMoreCycles)
{
    MacArray arr;
    const MacOps ops = 100000;
    EXPECT_GT(arr.cyclesFor(ops, 8), arr.cyclesFor(ops, 32));
}

TEST(MacArray, UtilizationPerfectSchedule)
{
    MacArray arr;
    arr.recordWork(512 * 100, 100, 64);
    EXPECT_DOUBLE_EQ(arr.utilization(), 1.0);
}

TEST(MacArray, UtilizationHalfIdle)
{
    MacArray arr;
    arr.recordWork(512 * 50, 100, 64);
    EXPECT_DOUBLE_EQ(arr.utilization(), 0.5);
}

TEST(MacArray, UtilizationAggregatesRecords)
{
    MacArray arr;
    arr.recordWork(8 * 10, 10, 1);   // full on one line
    arr.recordWork(0, 10, 1);        // idle
    EXPECT_DOUBLE_EQ(arr.utilization(), 0.5);
}

TEST(MacArray, ModeSwitchCounting)
{
    MacArray arr;
    arr.recordModeSwitch();
    arr.recordModeSwitch();
    EXPECT_EQ(arr.modeSwitches(), 2u);
    arr.resetStats();
    EXPECT_EQ(arr.modeSwitches(), 0u);
    EXPECT_DOUBLE_EQ(arr.utilization(), 0.0);
}

TEST(MacArrayDeath, BadLineAllocation)
{
    MacArray arr;
    EXPECT_DEATH(arr.cyclesFor(100, 0), "bad line allocation");
    EXPECT_DEATH(arr.cyclesFor(100, 65), "bad line allocation");
}

} // namespace
} // namespace vitcod::sim
