/**
 * @file
 * Tests of the double-buffered tile schedule, including the
 * agreement property between the analytic recurrence and the
 * event-driven execution — the check that keeps the cheap form
 * honest.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/tile_scheduler.h"

namespace vitcod::sim {
namespace {

TEST(TileScheduler, EmptyIsZero)
{
    EXPECT_EQ(doubleBufferedCycles({}), 0u);
    EXPECT_EQ(doubleBufferedCyclesEventDriven({}), 0u);
    EXPECT_EQ(serialCycles({}), 0u);
}

TEST(TileScheduler, SingleTileIsSerial)
{
    const std::vector<TileCost> t = {{10, 20, 5}};
    EXPECT_EQ(doubleBufferedCycles(t), 35u);
    EXPECT_EQ(serialCycles(t), 35u);
}

TEST(TileScheduler, ComputeBoundSteadyState)
{
    // load 5, compute 20 each: loads hide entirely behind compute.
    const std::vector<TileCost> t(10, TileCost{5, 20, 0});
    EXPECT_EQ(doubleBufferedCycles(t), 5u + 10u * 20u);
}

TEST(TileScheduler, MemoryBoundSteadyState)
{
    // load 20, compute 5: compute hides behind the load stream.
    const std::vector<TileCost> t(10, TileCost{20, 5, 0});
    EXPECT_EQ(doubleBufferedCycles(t), 10u * 20u + 5u);
}

TEST(TileScheduler, OverlapNeverWorseThanSerial)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<TileCost> t(1 + rng.uniformInt(8));
        for (auto &tc : t) {
            tc.load = rng.uniformInt(30);
            tc.compute = rng.uniformInt(30);
            tc.store = rng.uniformInt(30);
        }
        EXPECT_LE(doubleBufferedCycles(t), serialCycles(t));
    }
}

TEST(TileScheduler, LowerBoundIsEachResourceSum)
{
    Rng rng(2);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<TileCost> t(1 + rng.uniformInt(8));
        Cycles load = 0, comp = 0, store = 0;
        for (auto &tc : t) {
            tc.load = rng.uniformInt(30);
            tc.compute = rng.uniformInt(30);
            tc.store = rng.uniformInt(30);
            load += tc.load;
            comp += tc.compute;
            store += tc.store;
        }
        const Cycles total = doubleBufferedCycles(t);
        EXPECT_GE(total, load);
        EXPECT_GE(total, comp);
        EXPECT_GE(total, store);
    }
}

TEST(TileScheduler, AnalyticMatchesEventDrivenRandomized)
{
    Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<TileCost> t(1 + rng.uniformInt(12));
        for (auto &tc : t) {
            tc.load = rng.uniformInt(50);
            tc.compute = rng.uniformInt(50);
            tc.store = rng.uniformInt(50);
        }
        EXPECT_EQ(doubleBufferedCycles(t),
                  doubleBufferedCyclesEventDriven(t))
            << "trial " << trial;
    }
}

TEST(TileScheduler, ZeroPhasesDegenerate)
{
    const std::vector<TileCost> t = {{0, 10, 0}, {0, 20, 0}};
    EXPECT_EQ(doubleBufferedCycles(t), 30u);
    EXPECT_EQ(doubleBufferedCyclesEventDriven(t), 30u);
}

TEST(TileScheduler, StoreDrainCounted)
{
    const std::vector<TileCost> t = {{1, 1, 100}};
    EXPECT_EQ(doubleBufferedCycles(t), 102u);
}

} // namespace
} // namespace vitcod::sim
