/**
 * @file
 * Shared test helper for on-disk scratch files. `ctest -j` runs
 * test binaries concurrently, so (per TESTING.md) every temp path
 * must be collision-free across processes: TempDir() plus the PID.
 * One definition here so the rule has one implementation to fix.
 */

#ifndef VITCOD_TESTS_SUPPORT_TEMP_PATH_H
#define VITCOD_TESTS_SUPPORT_TEMP_PATH_H

#include <gtest/gtest.h>

#include <string>
#include <unistd.h>

namespace vitcod::test {

/** TempDir()/vitcod_<pid>_<name>; caller removes it when done. */
inline std::string
uniqueTempPath(const std::string &name)
{
    return testing::TempDir() + "vitcod_" +
           std::to_string(static_cast<unsigned long>(::getpid())) +
           "_" + name;
}

} // namespace vitcod::test

#endif // VITCOD_TESTS_SUPPORT_TEMP_PATH_H
