/**
 * @file
 * Tests of the runtime ISA dispatch layer (linalg/engine/isa):
 * resolveIsa precedence (config > VITCOD_ISA env > CPUID
 * auto-detect), downward clamping on unsupported/uncompiled levels,
 * name parsing, the kernel-table registry, and the engine-facing
 * behavior (construction-time env pickup, Auto picking the host's
 * best level, forceIsa clamping). resolveIsa is a pure function of
 * (forced, CpuFeatures, env), so every precedence and clamping case
 * runs with mocked CPU features and env strings — no real CPUID, no
 * setenv.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "linalg/engine/isa/isa.h"

namespace vitcod::linalg::engine::isa {
namespace {

// Mocked hosts. Compiled-level availability still comes from the
// real binary (isaCompiled), so expectations about vector levels are
// gated on it.
constexpr CpuFeatures kNoSimd{};
constexpr CpuFeatures kAvx2Only{.avx2 = true};
constexpr CpuFeatures kAvx512Host{.avx2 = true, .avx512f = true};
constexpr CpuFeatures kNeonHost{.neon = true};

TEST(IsaNames, ParseAcceptsKnownNamesCaseInsensitive)
{
    EXPECT_EQ(parseIsaName("scalar"), IsaLevel::Scalar);
    EXPECT_EQ(parseIsaName("neon"), IsaLevel::Neon);
    EXPECT_EQ(parseIsaName("avx2"), IsaLevel::Avx2);
    EXPECT_EQ(parseIsaName("avx512"), IsaLevel::Avx512);
    EXPECT_EQ(parseIsaName("AVX2"), IsaLevel::Avx2);
    EXPECT_EQ(parseIsaName("Scalar"), IsaLevel::Scalar);

    EXPECT_EQ(parseIsaName("auto"), std::nullopt);
    EXPECT_EQ(parseIsaName(""), std::nullopt);
    EXPECT_EQ(parseIsaName("sse9"), std::nullopt);
}

TEST(IsaNames, RoundTripThroughIsaName)
{
    for (IsaLevel l : {IsaLevel::Scalar, IsaLevel::Neon, IsaLevel::Avx2,
                       IsaLevel::Avx512})
        EXPECT_EQ(parseIsaName(isaName(l)), l);
}

TEST(IsaNames, VariantNamesAreStable)
{
    EXPECT_STREQ(variantName({KernelTier::Reference, IsaLevel::Scalar}),
                 "reference/scalar");
    EXPECT_STREQ(variantName({KernelTier::Optimized, IsaLevel::Avx2}),
                 "optimized/avx2");
    EXPECT_STREQ(
        variantName({KernelTier::Optimized, IsaLevel::Avx512}),
        "optimized/avx512");
}

TEST(CpuSupport, ScalarRunsEverywhere)
{
    for (const auto &f : {kNoSimd, kAvx2Only, kAvx512Host, kNeonHost})
        EXPECT_TRUE(cpuSupports(f, IsaLevel::Scalar));
}

TEST(CpuSupport, VectorLevelsRequireTheirFeatures)
{
    EXPECT_FALSE(cpuSupports(kNoSimd, IsaLevel::Avx2));
    EXPECT_TRUE(cpuSupports(kAvx2Only, IsaLevel::Avx2));
    // AVX-512 kernels also use 256-bit double lanes: require AVX2.
    EXPECT_FALSE(cpuSupports(kAvx2Only, IsaLevel::Avx512));
    EXPECT_TRUE(cpuSupports(kAvx512Host, IsaLevel::Avx512));
    EXPECT_FALSE(cpuSupports(kAvx512Host, IsaLevel::Neon));
    EXPECT_TRUE(cpuSupports(kNeonHost, IsaLevel::Neon));
}

TEST(Registry, ScalarTableIsAlwaysCompiledAndComplete)
{
    ASSERT_TRUE(isaCompiled(IsaLevel::Scalar));
    const IsaKernelTable *t = isaKernelTable(IsaLevel::Scalar);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->level, IsaLevel::Scalar);
    EXPECT_NE(t->gemmPanel, nullptr);
    EXPECT_NE(t->gemmTransBPanel, nullptr);
    EXPECT_NE(t->sddmmCsrPanel, nullptr);
    EXPECT_NE(t->sddmmCscPanel, nullptr);
    EXPECT_NE(t->softmaxCsrPanel, nullptr);
    EXPECT_NE(t->spmmPanel, nullptr);
}

TEST(Registry, CompiledLevelsHaveCompleteTablesUncompiledHaveNone)
{
    for (IsaLevel l : {IsaLevel::Scalar, IsaLevel::Neon, IsaLevel::Avx2,
                       IsaLevel::Avx512}) {
        const IsaKernelTable *t = isaKernelTable(l);
        if (isaCompiled(l)) {
            ASSERT_NE(t, nullptr) << isaName(l);
            EXPECT_EQ(t->level, l);
            EXPECT_NE(t->sddmmCsrPanel, nullptr) << isaName(l);
        } else {
            EXPECT_EQ(t, nullptr) << isaName(l);
        }
    }
}

TEST(Registry, CompiledLevelListIsHighestFirstAndEndsWithScalar)
{
    const auto levels = compiledIsaLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.back(), IsaLevel::Scalar);
    for (size_t i = 1; i < levels.size(); ++i)
        EXPECT_GT(levels[i - 1], levels[i]);
}

TEST(ResolveIsa, AutoPicksHighestCompiledSupportedLevel)
{
    // No force, no env: detection over the mocked host, capped by
    // what the binary actually carries.
    const IsaLevel no_simd = resolveIsa(std::nullopt, kNoSimd, nullptr);
    EXPECT_EQ(no_simd, IsaLevel::Scalar);

    const IsaLevel avx2 = resolveIsa(std::nullopt, kAvx2Only, nullptr);
    EXPECT_EQ(avx2, isaCompiled(IsaLevel::Avx2) ? IsaLevel::Avx2
                                                : IsaLevel::Scalar);

    const IsaLevel avx512 =
        resolveIsa(std::nullopt, kAvx512Host, nullptr);
    if (isaCompiled(IsaLevel::Avx512))
        EXPECT_EQ(avx512, IsaLevel::Avx512);
    else
        EXPECT_EQ(avx512, isaCompiled(IsaLevel::Avx2)
                              ? IsaLevel::Avx2
                              : IsaLevel::Scalar);
}

TEST(ResolveIsa, ForcedLevelWinsOverEnvAndDetection)
{
    EXPECT_EQ(resolveIsa(IsaLevel::Scalar, kAvx512Host, "avx2"),
              IsaLevel::Scalar);
    if (isaCompiled(IsaLevel::Avx2))
        EXPECT_EQ(resolveIsa(IsaLevel::Avx2, kAvx512Host, "scalar"),
                  IsaLevel::Avx2);
}

TEST(ResolveIsa, EnvWinsOverDetection)
{
    EXPECT_EQ(resolveIsa(std::nullopt, kAvx512Host, "scalar"),
              IsaLevel::Scalar);
    if (isaCompiled(IsaLevel::Avx2))
        EXPECT_EQ(resolveIsa(std::nullopt, kAvx512Host, "avx2"),
                  IsaLevel::Avx2);
}

TEST(ResolveIsa, EmptyAutoOrBadEnvFallsBackToDetection)
{
    const IsaLevel detected =
        resolveIsa(std::nullopt, kNoSimd, nullptr);
    EXPECT_EQ(resolveIsa(std::nullopt, kNoSimd, ""), detected);
    EXPECT_EQ(resolveIsa(std::nullopt, kNoSimd, "auto"), detected);
    EXPECT_EQ(resolveIsa(std::nullopt, kNoSimd, "not-an-isa"),
              detected);
}

TEST(ResolveIsa, UnsupportedRequestClampsDownNeverUp)
{
    // AVX-512 requested on an AVX2-only host: the best level at or
    // below the request that the host can run.
    const IsaLevel clamped =
        resolveIsa(IsaLevel::Avx512, kAvx2Only, nullptr);
    EXPECT_EQ(clamped, isaCompiled(IsaLevel::Avx2) ? IsaLevel::Avx2
                                                   : IsaLevel::Scalar);

    // Any vector request on a featureless host lands on Scalar.
    EXPECT_EQ(resolveIsa(IsaLevel::Avx512, kNoSimd, nullptr),
              IsaLevel::Scalar);
    EXPECT_EQ(resolveIsa(IsaLevel::Avx2, kNoSimd, nullptr),
              IsaLevel::Scalar);
    // NEON requested on an x86 host: nothing at or below it but
    // Scalar (the enum orders Neon below Avx2 on purpose).
    EXPECT_EQ(resolveIsa(IsaLevel::Neon, kAvx512Host, nullptr),
              IsaLevel::Scalar);
}

TEST(ResolveIsa, EnvRequestAboveHostClampsDown)
{
    EXPECT_EQ(resolveIsa(std::nullopt, kNoSimd, "avx512"),
              IsaLevel::Scalar);
}

TEST(IsaEngine, EngineConstructionHonorsVitcodIsaEnv)
{
    // The engine reads VITCOD_ISA at construction; "scalar" is
    // always satisfiable, making this assertion host-independent.
    ASSERT_EQ(setenv("VITCOD_ISA", "scalar", /*overwrite=*/1), 0);
    {
        const KernelEngine eng({.tier = KernelTier::Optimized});
        EXPECT_EQ(eng.isaLevel(), IsaLevel::Scalar);
    }
    // Config pin beats the env.
    if (isaCompiled(IsaLevel::Avx2) &&
        cpuSupports(hostCpuFeatures(), IsaLevel::Avx2)) {
        const KernelEngine pinned({.tier = KernelTier::Optimized,
                                   .isa = IsaLevel::Avx2});
        EXPECT_EQ(pinned.isaLevel(), IsaLevel::Avx2);
    }
    ASSERT_EQ(unsetenv("VITCOD_ISA"), 0);

    const KernelEngine eng({.tier = KernelTier::Optimized});
    EXPECT_EQ(eng.isaLevel(),
              resolveIsa(std::nullopt, hostCpuFeatures(), nullptr));
}

TEST(IsaEngine, AutoEngineRunsTheHostsBestLevel)
{
    const IsaLevel best =
        resolveIsa(std::nullopt, hostCpuFeatures(), nullptr);
    const KernelEngine eng({.tier = KernelTier::Optimized});
    EXPECT_EQ(eng.variant(),
              (KernelVariant{KernelTier::Optimized, best}));

    Rng rng(3);
    const auto a = Matrix::randomNormal(64, 64, rng);
    const auto b = Matrix::randomNormal(64, 64, rng);
    (void)eng.gemm(a, b);
    const DispatchStats st = eng.stats();
    const uint64_t launches = st.isaScalar + st.isaNeon + st.isaAvx2 +
                              st.isaAvx512;
    EXPECT_EQ(launches, 1u);
    switch (best) {
    case IsaLevel::Scalar: EXPECT_EQ(st.isaScalar, 1u); break;
    case IsaLevel::Neon: EXPECT_EQ(st.isaNeon, 1u); break;
    case IsaLevel::Avx2: EXPECT_EQ(st.isaAvx2, 1u); break;
    case IsaLevel::Avx512: EXPECT_EQ(st.isaAvx512, 1u); break;
    }
}

TEST(IsaEngine, ForceIsaClampsAndReportsTheAppliedLevel)
{
    KernelEngine eng({.tier = KernelTier::Optimized});
    // Scalar is always applicable exactly.
    EXPECT_EQ(eng.forceIsa(IsaLevel::Scalar), IsaLevel::Scalar);
    // Re-forcing whatever resolved at construction round-trips.
    const IsaLevel best =
        resolveIsa(std::nullopt, hostCpuFeatures(), nullptr);
    EXPECT_EQ(eng.forceIsa(best), best);
    // A level the host can't run clamps to something it can.
    const IsaLevel applied = eng.forceIsa(IsaLevel::Avx512);
    EXPECT_TRUE(cpuSupports(hostCpuFeatures(), applied));
    EXPECT_LE(applied, IsaLevel::Avx512);
}

} // namespace
} // namespace vitcod::linalg::engine::isa
