/**
 * @file
 * Tests of the Matrix container itself.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace vitcod::linalg {
namespace {

TEST(Matrix, DefaultIsEmpty)
{
    Matrix m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.size(), 0u);
}

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.size(), 12u);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(m(r, c), 0.0f);
}

TEST(Matrix, ElementAccessAndFill)
{
    Matrix m(2, 2);
    m(0, 1) = 5.0f;
    EXPECT_FLOAT_EQ(m.at(0, 1), 5.0f);
    m.fill(2.5f);
    EXPECT_FLOAT_EQ(m(1, 1), 2.5f);
}

TEST(Matrix, RowDataIsContiguous)
{
    Matrix m(2, 3);
    m(1, 0) = 1.0f;
    m(1, 2) = 3.0f;
    const float *row = m.rowData(1);
    EXPECT_FLOAT_EQ(row[0], 1.0f);
    EXPECT_FLOAT_EQ(row[2], 3.0f);
    EXPECT_EQ(row, m.data() + 3);
}

TEST(Matrix, IdentityDiagonal)
{
    const Matrix id = Matrix::identity(4);
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(id(r, c), r == c ? 1.0f : 0.0f);
}

TEST(Matrix, RandomUniformWithinBounds)
{
    Rng rng(1);
    const Matrix m = Matrix::randomUniform(20, 20, rng, -2.0f, 3.0f);
    for (size_t r = 0; r < 20; ++r) {
        for (size_t c = 0; c < 20; ++c) {
            EXPECT_GE(m(r, c), -2.0f);
            EXPECT_LT(m(r, c), 3.0f);
        }
    }
}

TEST(Matrix, RandomNormalMoments)
{
    Rng rng(2);
    const Matrix m = Matrix::randomNormal(100, 100, rng, 1.0f, 2.0f);
    double sum = 0.0;
    for (size_t r = 0; r < 100; ++r)
        for (size_t c = 0; c < 100; ++c)
            sum += m(r, c);
    EXPECT_NEAR(sum / 10000.0, 1.0, 0.1);
}

TEST(Matrix, EqualityIsValueBased)
{
    Matrix a(2, 2);
    Matrix b(2, 2);
    EXPECT_EQ(a, b);
    b(0, 0) = 1.0f;
    EXPECT_NE(a, b);
}

TEST(MatrixDeath, CheckedAccessOutOfRange)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of range");
    EXPECT_DEATH(m.at(0, 2), "out of range");
}

} // namespace
} // namespace vitcod::linalg
