/**
 * @file
 * ThreadPool unit and thread-safety tests: task execution, idle
 * waiting, parallel-for coverage/determinism (every index exactly
 * once, bitwise-identical results over repeated runs), nested
 * parallel-for running inline, and concurrent parallel-for callers
 * sharing one pool. Built with the TSan job's binaries so data races
 * in the pool surface in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "linalg/engine/thread_pool.h"

namespace vitcod::linalg::engine {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    for (size_t n : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
        std::vector<std::atomic<uint32_t>> hits(n);
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(0, n, 3, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                hits[i].fetch_add(1);
        });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST(ThreadPool, ParallelForEmptyRangeAndZeroGrain)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(5, 5, 4, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    // grain 0 = auto; range still fully covered.
    std::vector<std::atomic<uint32_t>> hits(33);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(0, 33, 0, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPool, ParallelForIsDeterministicOverRepeatedRuns)
{
    // Chunk-local accumulation into disjoint slices must produce the
    // same bits no matter how chunks are scheduled.
    ThreadPool pool(4);
    constexpr size_t kN = 512;
    std::vector<float> in(kN);
    for (size_t i = 0; i < kN; ++i)
        in[i] = static_cast<float>(i % 37) * 0.125f + 0.001f;

    std::vector<float> first;
    for (int run = 0; run < 16; ++run) {
        std::vector<float> out(kN, 0.0f);
        pool.parallelFor(0, kN, 8, [&](size_t b, size_t e) {
            float acc = 0.0f;
            for (size_t i = b; i < e; ++i) {
                acc += in[i];
                out[i] = acc; // prefix within the chunk: order-sensitive
            }
        });
        if (run == 0)
            first = out;
        else
            EXPECT_EQ(out, first) << "run " << run;
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(2);
    std::atomic<uint32_t> total{0};
    pool.submit([&] {
        // From inside a pool task: must not deadlock on capacity.
        pool.parallelFor(0, 100, 10, [&](size_t b, size_t e) {
            total.fetch_add(static_cast<uint32_t>(e - b));
        });
    });
    pool.waitIdle();
    EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, ConcurrentParallelForCallersShareOnePool)
{
    ThreadPool pool(4);
    constexpr size_t kCallers = 4;
    constexpr size_t kN = 256;
    std::vector<std::vector<uint32_t>> results(kCallers);
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (size_t t = 0; t < kCallers; ++t) {
        callers.emplace_back([&, t] {
            std::vector<uint32_t> out(kN, 0);
            pool.parallelFor(0, kN, 16, [&](size_t b, size_t e) {
                for (size_t i = b; i < e; ++i)
                    out[i] = static_cast<uint32_t>(i * (t + 1));
            });
            results[t] = std::move(out);
        });
    }
    for (auto &c : callers)
        c.join();
    for (size_t t = 0; t < kCallers; ++t)
        for (size_t i = 0; i < kN; ++i)
            ASSERT_EQ(results[t][i], i * (t + 1));
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    std::vector<uint32_t> out(64, 0);
    pool.parallelFor(0, 64, 8, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            out[i] = 1;
    });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0u), 64u);
}

TEST(ThreadPool, SharedPoolIsUsableAndStable)
{
    ThreadPool &a = ThreadPool::shared();
    ThreadPool &b = ThreadPool::shared();
    EXPECT_EQ(&a, &b);
    std::atomic<int> ran{0};
    a.submit([&ran] { ran.store(1); });
    a.waitIdle();
    EXPECT_EQ(ran.load(), 1);
}

} // namespace
} // namespace vitcod::linalg::engine
