/**
 * @file
 * Tests of the dense golden kernels against brute-force references.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/kernels.h"

namespace vitcod::linalg {
namespace {

Matrix
naiveGemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (size_t k = 0; k < a.cols(); ++k)
                acc += static_cast<double>(a(i, k)) * b(k, j);
            c(i, j) = static_cast<float>(acc);
        }
    return c;
}

TEST(Gemm, MatchesNaiveOnRandom)
{
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(13, 7, rng);
    const Matrix b = Matrix::randomNormal(7, 11, rng);
    EXPECT_LT(maxAbsDiff(gemm(a, b), naiveGemm(a, b)), 1e-4);
}

TEST(Gemm, IdentityIsNoop)
{
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(6, 6, rng);
    EXPECT_LT(maxAbsDiff(gemm(a, Matrix::identity(6)), a), 1e-6);
    EXPECT_LT(maxAbsDiff(gemm(Matrix::identity(6), a), a), 1e-6);
}

TEST(GemmTransB, MatchesGemmWithExplicitTranspose)
{
    Rng rng(3);
    const Matrix a = Matrix::randomNormal(9, 5, rng);
    const Matrix b = Matrix::randomNormal(12, 5, rng);
    EXPECT_LT(maxAbsDiff(gemmTransB(a, b), gemm(a, transpose(b))),
              1e-4);
}

TEST(GemmTransB, AttentionScoreShape)
{
    Rng rng(4);
    const Matrix q = Matrix::randomNormal(197, 64, rng);
    const Matrix k = Matrix::randomNormal(197, 64, rng);
    const Matrix s = gemmTransB(q, k);
    EXPECT_EQ(s.rows(), 197u);
    EXPECT_EQ(s.cols(), 197u);
}

TEST(Axpby, LinearCombination)
{
    Matrix a(2, 2);
    Matrix b(2, 2);
    a.fill(2.0f);
    b.fill(3.0f);
    const Matrix c = axpby(2.0f, a, -1.0f, b);
    EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 1.0f);
}

TEST(Transpose, Involution)
{
    Rng rng(5);
    const Matrix a = Matrix::randomNormal(8, 3, rng);
    EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(SoftmaxRows, RowsSumToOne)
{
    Rng rng(6);
    const Matrix a = Matrix::randomNormal(10, 20, rng, 0.0f, 3.0f);
    const Matrix s = softmaxRows(a);
    for (size_t r = 0; r < s.rows(); ++r) {
        double sum = 0.0;
        for (size_t c = 0; c < s.cols(); ++c) {
            EXPECT_GT(s(r, c), 0.0f);
            sum += s(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(SoftmaxRows, StableUnderLargeInputs)
{
    Matrix a(1, 3);
    a(0, 0) = 1000.0f;
    a(0, 1) = 1000.0f;
    a(0, 2) = -1000.0f;
    const Matrix s = softmaxRows(a);
    EXPECT_NEAR(s(0, 0), 0.5, 1e-5);
    EXPECT_NEAR(s(0, 1), 0.5, 1e-5);
    EXPECT_NEAR(s(0, 2), 0.0, 1e-6);
}

TEST(SoftmaxRows, MonotoneInLogits)
{
    Matrix a(1, 2);
    a(0, 0) = 2.0f;
    a(0, 1) = 1.0f;
    const Matrix s = softmaxRows(a);
    EXPECT_GT(s(0, 0), s(0, 1));
}

TEST(Relu, ClampsNegatives)
{
    Matrix a(1, 4);
    a(0, 0) = -1.0f;
    a(0, 1) = 0.0f;
    a(0, 2) = 2.0f;
    a(0, 3) = -0.5f;
    reluInPlace(a);
    EXPECT_FLOAT_EQ(a(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(a(0, 2), 2.0f);
    EXPECT_FLOAT_EQ(a(0, 3), 0.0f);
}

TEST(Gelu, KnownValues)
{
    Matrix a(1, 3);
    a(0, 0) = 0.0f;
    a(0, 1) = 10.0f;
    a(0, 2) = -10.0f;
    geluInPlace(a);
    EXPECT_NEAR(a(0, 0), 0.0, 1e-6);
    EXPECT_NEAR(a(0, 1), 10.0, 1e-3);  // ~identity for large x
    EXPECT_NEAR(a(0, 2), 0.0, 1e-3);   // ~0 for very negative x
}

TEST(Gelu, MidpointValue)
{
    Matrix a(1, 1);
    a(0, 0) = 1.0f;
    geluInPlace(a);
    EXPECT_NEAR(a(0, 0), 0.8412, 5e-3); // published GELU(1)
}

TEST(PermuteRows, ReordersRows)
{
    Matrix a(3, 2);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 2; ++c)
            a(r, c) = static_cast<float>(10 * r + c);
    const Matrix p = permuteRows(a, {2, 0, 1});
    EXPECT_FLOAT_EQ(p(0, 0), 20.0f);
    EXPECT_FLOAT_EQ(p(1, 0), 0.0f);
    EXPECT_FLOAT_EQ(p(2, 1), 11.0f);
}

TEST(Norms, FrobeniusOfKnownMatrix)
{
    Matrix a(2, 2);
    a(0, 0) = 3.0f;
    a(1, 1) = 4.0f;
    EXPECT_NEAR(frobeniusNorm(a), 5.0, 1e-6);
}

TEST(Norms, MseAndMaxDiff)
{
    Matrix a(1, 2);
    Matrix b(1, 2);
    a(0, 0) = 1.0f;
    a(0, 1) = 2.0f;
    b(0, 0) = 2.0f;
    b(0, 1) = 4.0f;
    EXPECT_NEAR(maxAbsDiff(a, b), 2.0, 1e-9);
    EXPECT_NEAR(meanSquaredError(a, b), (1.0 + 4.0) / 2.0, 1e-9);
}

TEST(ScaleInPlace, Scales)
{
    Matrix a(2, 2);
    a.fill(2.0f);
    scaleInPlace(a, 0.5f);
    EXPECT_FLOAT_EQ(a(1, 0), 1.0f);
}

} // namespace
} // namespace vitcod::linalg
