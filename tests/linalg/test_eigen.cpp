/**
 * @file
 * Tests of the Jacobi eigensolver and PCA.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/kernels.h"

namespace vitcod::linalg {
namespace {

TEST(JacobiEigen, DiagonalMatrix)
{
    Matrix a(3, 3);
    a(0, 0) = 1.0f;
    a(1, 1) = 5.0f;
    a(2, 2) = 3.0f;
    const EigenDecomposition e = jacobiEigen(a);
    EXPECT_NEAR(e.values[0], 5.0, 1e-9);
    EXPECT_NEAR(e.values[1], 3.0, 1e-9);
    EXPECT_NEAR(e.values[2], 1.0, 1e-9);
}

TEST(JacobiEigen, Known2x2)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix a(2, 2);
    a(0, 0) = 2.0f;
    a(0, 1) = 1.0f;
    a(1, 0) = 1.0f;
    a(1, 1) = 2.0f;
    const EigenDecomposition e = jacobiEigen(a);
    EXPECT_NEAR(e.values[0], 3.0, 1e-9);
    EXPECT_NEAR(e.values[1], 1.0, 1e-9);
}

TEST(JacobiEigen, ReconstructsMatrix)
{
    Rng rng(1);
    const size_t n = 8;
    const Matrix b = Matrix::randomNormal(n, n, rng);
    const Matrix a = gemm(b, transpose(b)); // symmetric PSD
    const EigenDecomposition e = jacobiEigen(a);

    // A ?= V diag(w) V^T
    Matrix vw(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            vw(i, j) = e.vectors(i, j) *
                       static_cast<float>(e.values[j]);
    const Matrix recon = gemm(vw, transpose(e.vectors));
    EXPECT_LT(maxAbsDiff(recon, a), 1e-3);
}

TEST(JacobiEigen, VectorsOrthonormal)
{
    Rng rng(2);
    const Matrix b = Matrix::randomNormal(6, 6, rng);
    const Matrix a = gemm(b, transpose(b));
    const EigenDecomposition e = jacobiEigen(a);
    const Matrix vtv = gemm(transpose(e.vectors), e.vectors);
    EXPECT_LT(maxAbsDiff(vtv, Matrix::identity(6)), 1e-4);
}

TEST(JacobiEigen, TraceEqualsEigenvalueSum)
{
    Rng rng(3);
    const Matrix b = Matrix::randomNormal(10, 10, rng);
    const Matrix a = gemm(b, transpose(b));
    const EigenDecomposition e = jacobiEigen(a);
    double trace = 0.0;
    for (size_t i = 0; i < 10; ++i)
        trace += a(i, i);
    double sum = 0.0;
    for (double w : e.values)
        sum += w;
    EXPECT_NEAR(trace, sum, 1e-3 * std::abs(trace));
}

TEST(FitPca, RecoversLowRankStructure)
{
    // Data with exact rank 2 across 6 features.
    Rng rng(4);
    const size_t n = 500;
    const Matrix latents = Matrix::randomNormal(n, 2, rng);
    const Matrix mixing = Matrix::randomNormal(2, 6, rng);
    const Matrix data = gemm(latents, mixing);

    const PcaResult pca = fitPca(data, 2);
    EXPECT_GT(pca.capturedFraction, 0.999);
    EXPECT_EQ(pca.components.rows(), 2u);
    EXPECT_EQ(pca.components.cols(), 6u);
}

TEST(FitPca, ExplainedVarianceDescending)
{
    Rng rng(5);
    const Matrix data = Matrix::randomNormal(300, 5, rng);
    const PcaResult pca = fitPca(data, 5);
    for (size_t i = 1; i < 5; ++i)
        EXPECT_GE(pca.explainedVariance[i - 1],
                  pca.explainedVariance[i]);
}

TEST(FitPca, CapturedFractionGrowsWithK)
{
    Rng rng(6);
    const Matrix data = Matrix::randomNormal(400, 8, rng);
    double prev = 0.0;
    for (size_t k = 1; k <= 8; ++k) {
        const double captured = fitPca(data, k).capturedFraction;
        EXPECT_GE(captured + 1e-12, prev);
        prev = captured;
    }
    EXPECT_NEAR(prev, 1.0, 1e-6);
}

TEST(FitPca, ProjectionReconstructionError)
{
    // PCA on isotropic noise with k = d captures everything: the
    // reconstruction through all components is exact.
    Rng rng(7);
    const Matrix data = Matrix::randomNormal(200, 4, rng);
    const PcaResult pca = fitPca(data, 4, /*center=*/false);
    const Matrix z = gemmTransB(data, pca.components);
    const Matrix recon = gemm(z, pca.components);
    EXPECT_LT(maxAbsDiff(recon, data), 1e-3);
}

} // namespace
} // namespace vitcod::linalg
