/**
 * @file
 * Tests of the sparse attention golden kernels: SDDMM, masked
 * softmax and SpMM — cross-checked against the dense reference and
 * parameterized over sparsity levels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"

namespace vitcod::linalg {
namespace {

sparse::BitMask
randomMaskWithFullRows(size_t n, double density, uint64_t seed)
{
    Rng rng(seed);
    sparse::BitMask m(n, n);
    for (size_t r = 0; r < n; ++r) {
        m.set(r, rng.uniformInt(n), true); // no empty rows
        for (size_t c = 0; c < n; ++c)
            if (rng.uniform() < density)
                m.set(r, c, true);
    }
    return m;
}

TEST(Sddmm, MatchesDenseScoresAtMaskPositions)
{
    Rng rng(1);
    const Matrix q = Matrix::randomNormal(12, 8, rng);
    const Matrix k = Matrix::randomNormal(12, 8, rng);
    const auto mask = randomMaskWithFullRows(12, 0.3, 2);
    const sparse::Csr s = sddmm(q, k, mask, 0.25f);
    const Matrix dense = gemmTransB(q, k);

    const auto coo = s.toCoo();
    for (const auto &e : coo.entries) {
        EXPECT_NEAR(e.value, dense(e.row, e.col) * 0.25f, 1e-4);
    }
    EXPECT_EQ(s.nnz(), mask.nnz());
}

TEST(Sddmm, FullMaskEqualsDense)
{
    Rng rng(3);
    const Matrix q = Matrix::randomNormal(9, 5, rng);
    const Matrix k = Matrix::randomNormal(9, 5, rng);
    sparse::BitMask full(9, 9);
    for (size_t r = 0; r < 9; ++r)
        for (size_t c = 0; c < 9; ++c)
            full.set(r, c, true);
    const sparse::Csr s = sddmm(q, k, full, 1.0f);
    const Matrix dense = gemmTransB(q, k);
    for (const auto &e : s.toCoo().entries)
        EXPECT_NEAR(e.value, dense(e.row, e.col), 1e-4);
}

TEST(MaskedSoftmax, RowsSumToOneOverNonzeros)
{
    Rng rng(4);
    const Matrix q = Matrix::randomNormal(16, 8, rng);
    const Matrix k = Matrix::randomNormal(16, 8, rng);
    const auto mask = randomMaskWithFullRows(16, 0.25, 5);
    const sparse::Csr sm = maskedSoftmaxRows(sddmm(q, k, mask));
    for (size_t r = 0; r < sm.rows(); ++r) {
        double sum = 0.0;
        for (uint32_t i = sm.rowPtr()[r]; i < sm.rowPtr()[r + 1]; ++i)
            sum += sm.values()[i];
        EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << r;
    }
}

TEST(MaskedSoftmax, PreservesStructure)
{
    Rng rng(6);
    const Matrix q = Matrix::randomNormal(10, 4, rng);
    const Matrix k = Matrix::randomNormal(10, 4, rng);
    const auto mask = randomMaskWithFullRows(10, 0.2, 7);
    const sparse::Csr s = sddmm(q, k, mask);
    const sparse::Csr sm = maskedSoftmaxRows(s);
    EXPECT_EQ(sm.toMask(), s.toMask());
}

TEST(Spmm, MatchesDenseMultiply)
{
    Rng rng(8);
    const auto mask = randomMaskWithFullRows(14, 0.3, 9);
    const sparse::Csr s = sparse::Csr::fromMask(
        mask, [&](size_t r, size_t c) {
            return static_cast<float>(0.01 * r + 0.001 * c + 0.5);
        });
    const Matrix v = Matrix::randomNormal(14, 6, rng);

    // Dense reference.
    Matrix dense_s(14, 14);
    for (const auto &e : s.toCoo().entries)
        dense_s(e.row, e.col) = e.value;
    EXPECT_LT(maxAbsDiff(spmm(s, v), gemm(dense_s, v)), 1e-4);
}

TEST(Spmm, EmptyRowsGiveZeroOutput)
{
    sparse::BitMask mask(4, 4);
    mask.set(0, 0, true); // rows 1..3 empty
    const sparse::Csr s = sparse::Csr::fromMask(mask);
    Rng rng(10);
    const Matrix v = Matrix::randomNormal(4, 3, rng);
    const Matrix out = spmm(s, v);
    for (size_t c = 0; c < 3; ++c) {
        EXPECT_FLOAT_EQ(out(1, c), 0.0f);
        EXPECT_FLOAT_EQ(out(3, c), 0.0f);
    }
}

/** Full sparse path must equal the dense masked-attention reference. */
class SparseAttentionEquivalence
    : public ::testing::TestWithParam<double>
{};

TEST_P(SparseAttentionEquivalence, SparsePipelineMatchesDense)
{
    const double density = GetParam();
    Rng rng(42);
    const size_t n = 24;
    const size_t d = 8;
    const Matrix q = Matrix::randomNormal(n, d, rng);
    const Matrix k = Matrix::randomNormal(n, d, rng);
    const Matrix v = Matrix::randomNormal(n, d, rng);
    const auto mask = randomMaskWithFullRows(n, density, 43);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));

    const Matrix sparse_out =
        spmm(maskedSoftmaxRows(sddmm(q, k, mask, scale)), v);
    const Matrix dense_out =
        denseMaskedAttention(q, k, v, mask, scale);
    EXPECT_LT(maxAbsDiff(sparse_out, dense_out), 1e-4)
        << "density " << density;
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseAttentionEquivalence,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5, 0.9));

} // namespace
} // namespace vitcod::linalg
