/**
 * @file
 * Differential tests of the kernel execution engine: every optimized
 * path (tiled GEMM, CSR and CSC SDDMM, fused masked softmax, SpMM,
 * fused sparse attention, parallel panels) must reproduce the scalar
 * golden kernels within a small ulp budget, across random masks
 * spanning sparsity 0.50-0.98, and produce bitwise identical results
 * across repeated parallel runs.
 *
 * The whole differential suite is value-parameterized over every ISA
 * level compiled into this binary (isa::compiledIsaLevels()); levels
 * the host CPU cannot execute are skipped with a notice. The scalar
 * level additionally pins bitwise guarantees the SIMD levels cannot
 * make (FMA contracts the multiply-add rounding).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "linalg/engine/isa/isa.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "sparse/bitmask.h"

namespace vitcod::linalg {
namespace {

using engine::DispatchStats;
using engine::EngineConfig;
using engine::IsaLevel;
using engine::KernelEngine;
using engine::KernelTier;
using engine::ThreadPool;

/** ulp distance between two finite floats (huge when signs differ). */
uint64_t
ulpDiff(float a, float b)
{
    if (a == b)
        return 0;
    int32_t ia, ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    if ((ia < 0) != (ib < 0))
        return UINT64_MAX;
    return static_cast<uint64_t>(
        std::abs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib)));
}

/**
 * Optimized kernels accumulate in independent float lanes (and the
 * SIMD levels contract with FMA and use a polynomial expf) where the
 * oracle accumulates in one double, so "equal" means: identical
 * bits, or within a ulp budget, or within a tiny absolute band
 * (values that cancel toward zero lose relative precision without
 * being wrong).
 */
void
expectUlpClose(float a, float b, const char *what, uint64_t max_ulps = 4096)
{
    if (std::abs(a - b) <= 1e-5f)
        return;
    EXPECT_LE(ulpDiff(a, b), max_ulps)
        << what << ": " << a << " vs " << b;
}

void
expectMatrixClose(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            expectUlpClose(a(r, c), b(r, c), what);
}

void
expectCsrClose(const sparse::Csr &a, const sparse::Csr &b,
               const char *what)
{
    ASSERT_EQ(a.rowPtr(), b.rowPtr()) << what;
    ASSERT_EQ(a.colIdx(), b.colIdx()) << what;
    ASSERT_EQ(a.values().size(), b.values().size()) << what;
    for (size_t i = 0; i < a.values().size(); ++i)
        expectUlpClose(a.values()[i], b.values()[i], what);
}

/** Random mask at the target sparsity; row 0 is forced empty to
 *  cover the fully-masked-row path. */
sparse::BitMask
randomMask(size_t n, double sparsity, Rng &rng)
{
    sparse::BitMask mask(n, n);
    const auto target = static_cast<size_t>(
        static_cast<double>(n * n) * (1.0 - sparsity));
    size_t nnz = 0;
    while (nnz < target) {
        const auto r = static_cast<size_t>(rng.uniformInt(n));
        const auto c = static_cast<size_t>(rng.uniformInt(n));
        if (r == 0 || mask.get(r, c))
            continue;
        mask.set(r, c, true);
        ++nnz;
    }
    return mask;
}

constexpr double kSparsities[] = {0.50, 0.70, 0.85, 0.90, 0.95, 0.98};

/** The per-ISA launch counter of @p st for @p level. */
uint64_t
isaLaunches(const DispatchStats &st, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar: return st.isaScalar;
    case IsaLevel::Neon: return st.isaNeon;
    case IsaLevel::Avx2: return st.isaAvx2;
    case IsaLevel::Avx512: return st.isaAvx512;
    }
    return 0;
}

/**
 * Differential suite over one compiled ISA level. Skips (with a
 * notice in the test output) when the host CPU cannot execute the
 * level — e.g. the AVX-512 instantiation on an AVX2-only runner.
 */
class KernelEngineIsa : public ::testing::TestWithParam<IsaLevel>
{
  protected:
    void SetUp() override
    {
        if (!engine::isa::cpuSupports(engine::isa::hostCpuFeatures(),
                                      GetParam()))
            GTEST_SKIP() << "host CPU cannot execute "
                         << engine::isaName(GetParam());
    }

    /** Optimized-tier config pinned to the parameterized ISA. */
    EngineConfig
    optCfg() const
    {
        return {.tier = KernelTier::Optimized, .isa = GetParam()};
    }
};

INSTANTIATE_TEST_SUITE_P(
    CompiledIsas, KernelEngineIsa,
    ::testing::ValuesIn(engine::isa::compiledIsaLevels().begin(),
                        engine::isa::compiledIsaLevels().end()),
    [](const ::testing::TestParamInfo<IsaLevel> &info) {
        return std::string(engine::isaName(info.param));
    });

TEST_P(KernelEngineIsa, SddmmMatchesOracleAcrossSparsities)
{
    const KernelEngine opt(optCfg());
    Rng rng(7);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto ref = sddmm(q, k, mask, 0.125f);
        const auto got = opt.sddmm(q, k, mask, 0.125f);
        expectCsrClose(got, ref, "sddmm");
    }
}

TEST_P(KernelEngineIsa, CscAndCsrSddmmPathsAgreeBitwise)
{
    // Same dot inner loop, different traversal order: results must
    // be bitwise identical per ISA, not merely close.
    EngineConfig cfg = optCfg();
    cfg.cscSparsityThreshold = 0.0;
    const KernelEngine always_csc(cfg);
    cfg.cscSparsityThreshold = 2.0;
    const KernelEngine never_csc(cfg);
    Rng rng(11);
    const auto q = Matrix::randomNormal(128, 48, rng);
    const auto k = Matrix::randomNormal(128, 48, rng);
    for (double sp : {0.6, 0.9}) {
        const auto mask = randomMask(128, sp, rng);
        const auto a = always_csc.sddmm(q, k, mask, 1.0f);
        const auto b = never_csc.sddmm(q, k, mask, 1.0f);
        EXPECT_EQ(a.values(), b.values());
        EXPECT_EQ(a.colIdx(), b.colIdx());
    }
    EXPECT_GT(always_csc.stats().sddmmCsc, 0u);
    EXPECT_GT(never_csc.stats().sddmmCsr, 0u);
    EXPECT_EQ(always_csc.stats().sddmmCsr, 0u);
}

TEST_P(KernelEngineIsa, MaskedSoftmaxMatchesOracle)
{
    const KernelEngine opt(optCfg());
    Rng rng(13);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto s = sddmm(q, k, mask, 0.125f);
        const auto ref = maskedSoftmaxRows(s);
        const auto got = opt.maskedSoftmaxRows(s);
        expectCsrClose(got, ref, "maskedSoftmax");
        // Rows must still sum to 1.
        for (size_t r = 1; r < got.rows(); ++r) {
            if (got.rowNnz(r) == 0)
                continue;
            double sum = 0.0;
            for (uint32_t i = got.rowPtr()[r]; i < got.rowPtr()[r + 1];
                 ++i)
                sum += got.values()[i];
            EXPECT_NEAR(sum, 1.0, 1e-5);
        }
    }
}

TEST_P(KernelEngineIsa, SpmmMatchesOracle)
{
    const KernelEngine opt(optCfg());
    Rng rng(17);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto s = maskedSoftmaxRows(sddmm(q, k, mask, 0.125f));
        expectMatrixClose(opt.spmm(s, v), spmm(s, v), "spmm");
    }
}

TEST_P(KernelEngineIsa, FusedSparseAttentionMatchesComposedOracle)
{
    const KernelEngine opt(optCfg());
    Rng rng(19);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto ref = spmm(
            maskedSoftmaxRows(sddmm(q, k, mask, 0.125f)), v);
        expectMatrixClose(opt.sparseAttention(q, k, v, mask, 0.125f),
                          ref, "sparseAttention");
    }
}

TEST_P(KernelEngineIsa, GemmMatchesOracle)
{
    const KernelEngine opt(optCfg());
    Rng rng(23);
    const auto a = Matrix::randomNormal(197, 384, rng);
    const auto b = Matrix::randomNormal(384, 384, rng);
    const auto ref = gemm(a, b);
    const auto got = opt.gemm(a, b);
    if (GetParam() == IsaLevel::Scalar) {
        // Identical accumulation order (ascending k per output
        // element) without FMA contraction: the scalar blocked path
        // must be bit-for-bit the reference.
        EXPECT_TRUE(got == ref);
    } else {
        expectMatrixClose(got, ref, "gemm");
    }
}

TEST_P(KernelEngineIsa, GemmTransBMatchesOracle)
{
    const KernelEngine opt(optCfg());
    Rng rng(29);
    const auto a = Matrix::randomNormal(197, 64, rng);
    const auto b = Matrix::randomNormal(197, 64, rng);
    expectMatrixClose(opt.gemmTransB(a, b), gemmTransB(a, b),
                      "gemmTransB");
}

TEST_P(KernelEngineIsa, RaggedWidthsMatchOracle)
{
    // Odd feature dims exercise every SIMD tail path (masked loads
    // on AVX-512, scalar remainders elsewhere): 1 below/above the
    // 8- and 16-lane widths plus a sub-vector dim.
    const KernelEngine opt(optCfg());
    Rng rng(33);
    for (size_t d : {3u, 7u, 9u, 15u, 17u, 31u}) {
        const auto q = Matrix::randomNormal(64, d, rng);
        const auto k = Matrix::randomNormal(64, d, rng);
        const auto v = Matrix::randomNormal(64, d, rng);
        const auto mask = randomMask(64, 0.8, rng);
        const auto ref = spmm(
            maskedSoftmaxRows(sddmm(q, k, mask, 0.5f)), v);
        expectMatrixClose(opt.sparseAttention(q, k, v, mask, 0.5f),
                          ref, "ragged sparseAttention");
        expectMatrixClose(opt.gemmTransB(q, k), gemmTransB(q, k),
                          "ragged gemmTransB");
    }
}

TEST_P(KernelEngineIsa, ParallelRunsAreBitwiseDeterministic)
{
    ThreadPool pool(4);
    EngineConfig cfg = optCfg();
    cfg.rowPanel = 8;
    cfg.minParallelMacs = 1;
    const KernelEngine par(cfg, &pool);
    const KernelEngine ser(optCfg());
    Rng rng(31);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    const auto mask = randomMask(196, 0.9, rng);

    const Matrix serial = ser.sparseAttention(q, k, v, mask, 0.125f);
    for (int run = 0; run < 8; ++run) {
        const Matrix p = par.sparseAttention(q, k, v, mask, 0.125f);
        EXPECT_TRUE(p == serial) << "parallel run " << run;
    }
    EXPECT_GT(par.stats().parallelLaunches, 0u);
}

TEST_P(KernelEngineIsa, VariantAndLaunchCountersReportThisIsa)
{
    const KernelEngine opt(optCfg());
    EXPECT_EQ(opt.variant(),
              (engine::KernelVariant{KernelTier::Optimized,
                                     GetParam()}));
    Rng rng(37);
    const auto q = Matrix::randomNormal(128, 64, rng);
    const auto k = Matrix::randomNormal(128, 64, rng);
    const auto v = Matrix::randomNormal(128, 64, rng);
    const auto mask = randomMask(128, 0.9, rng);
    (void)opt.sparseAttention(q, k, v, mask, 0.125f);

    const DispatchStats st = opt.stats();
    // Fused attention = one SDDMM + one softmax + one SpMM launch,
    // all on the pinned ISA.
    EXPECT_EQ(isaLaunches(st, GetParam()), 3u);
    for (IsaLevel other : engine::isa::compiledIsaLevels())
        if (other != GetParam())
            EXPECT_EQ(isaLaunches(st, other), 0u)
                << engine::isaName(other);
}

TEST_P(KernelEngineIsa, EmptyAndFullMasksAreHandled)
{
    const KernelEngine opt(optCfg());
    Rng rng(43);
    const auto q = Matrix::randomNormal(16, 8, rng);
    const auto k = Matrix::randomNormal(16, 8, rng);
    const auto v = Matrix::randomNormal(16, 8, rng);

    sparse::BitMask empty(16, 16);
    const auto out_empty = opt.sparseAttention(q, k, v, empty, 1.0f);
    EXPECT_EQ(out_empty, Matrix(16, 8)); // all-zero

    sparse::BitMask full(16, 16);
    for (size_t r = 0; r < 16; ++r)
        for (size_t c = 0; c < 16; ++c)
            full.set(r, c, true);
    const auto ref = spmm(maskedSoftmaxRows(sddmm(q, k, full, 1.0f)), v);
    expectMatrixClose(opt.sparseAttention(q, k, v, full, 1.0f), ref,
                      "full mask");
}

TEST(KernelEngine, AutoTierDispatchesBySize)
{
    // ISA pinned to Scalar so the counter assertions below are
    // host-independent; the Auto-picks-highest-ISA behavior is
    // covered by test_isa_dispatch.cpp.
    const KernelEngine eng({.isa = IsaLevel::Scalar});
    Rng rng(37);
    // Tiny: reference path.
    const auto a_small = Matrix::randomNormal(4, 4, rng);
    const auto b_small = Matrix::randomNormal(4, 4, rng);
    (void)eng.gemm(a_small, b_small);
    EXPECT_EQ(eng.stats().gemmOptimized, 0u);
    EXPECT_EQ(eng.stats().gemmReference, 1u);
    EXPECT_EQ(eng.stats().isaScalar, 0u); // reference launch: no ISA
    // Big: optimized path.
    const auto a_big = Matrix::randomNormal(196, 384, rng);
    const auto b_big = Matrix::randomNormal(384, 384, rng);
    (void)eng.gemm(a_big, b_big);
    EXPECT_EQ(eng.stats().gemmOptimized, 1u);
    EXPECT_EQ(eng.stats().isaScalar, 1u);

    eng.resetStats();
    EXPECT_EQ(eng.stats().gemmOptimized, 0u);
}

TEST(KernelEngine, ReferenceTierPinsTheOracle)
{
    const KernelEngine ref({.tier = KernelTier::Reference});
    EXPECT_EQ(ref.variant(),
              (engine::KernelVariant{KernelTier::Reference,
                                     IsaLevel::Scalar}));
    Rng rng(41);
    const auto q = Matrix::randomNormal(64, 32, rng);
    const auto k = Matrix::randomNormal(64, 32, rng);
    const auto mask = randomMask(64, 0.9, rng);
    const auto a = ref.sddmm(q, k, mask, 1.0f);
    const auto b = sddmm(q, k, mask, 1.0f);
    EXPECT_EQ(a.values(), b.values());
    EXPECT_EQ(ref.stats().sddmmReference, 1u);
    EXPECT_EQ(ref.stats().sddmmCsr + ref.stats().sddmmCsc, 0u);
}

TEST(KernelEngine, ForceIsaRetargetsALiveEngine)
{
    KernelEngine eng({.tier = KernelTier::Optimized});
    const IsaLevel applied = eng.forceIsa(IsaLevel::Scalar);
    EXPECT_EQ(applied, IsaLevel::Scalar);
    EXPECT_EQ(eng.isaLevel(), IsaLevel::Scalar);

    Rng rng(47);
    const auto a = Matrix::randomNormal(64, 64, rng);
    const auto b = Matrix::randomNormal(64, 64, rng);
    (void)eng.gemm(a, b);
    EXPECT_EQ(eng.stats().isaScalar, 1u);

    // Forcing the host's best level is always satisfiable exactly.
    const IsaLevel best = engine::isa::resolveIsa(
        std::nullopt, engine::isa::hostCpuFeatures(), nullptr);
    EXPECT_EQ(eng.forceIsa(best), best);
    EXPECT_EQ(eng.variant().isa, best);
}

TEST(KernelEngine, DispatchStatsDifferenceIsCounterWise)
{
    DispatchStats a, b;
    a.gemmOptimized = 5;
    a.isaAvx2 = 7;
    b.gemmOptimized = 2;
    b.isaAvx2 = 3;
    const DispatchStats d = a - b;
    EXPECT_EQ(d.gemmOptimized, 3u);
    EXPECT_EQ(d.isaAvx2, 4u);
    EXPECT_EQ(d.sddmmCsr, 0u);
}

} // namespace
} // namespace vitcod::linalg
