/**
 * @file
 * Differential tests of the kernel execution engine: every optimized
 * path (tiled GEMM, CSR and CSC SDDMM, fused masked softmax, SpMM,
 * fused sparse attention, parallel panels) must reproduce the scalar
 * golden kernels bit-for-bit or within a small ulp budget, across
 * random masks spanning sparsity 0.50-0.98, and produce bitwise
 * identical results across repeated parallel runs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/rng.h"
#include "linalg/engine/engine.h"
#include "linalg/engine/thread_pool.h"
#include "linalg/kernels.h"
#include "linalg/sparse_kernels.h"
#include "sparse/bitmask.h"

namespace vitcod::linalg {
namespace {

using engine::DispatchMode;
using engine::EngineConfig;
using engine::KernelEngine;
using engine::ThreadPool;

/** ulp distance between two finite floats (huge when signs differ). */
uint64_t
ulpDiff(float a, float b)
{
    if (a == b)
        return 0;
    int32_t ia, ib;
    std::memcpy(&ia, &a, sizeof(ia));
    std::memcpy(&ib, &b, sizeof(ib));
    if ((ia < 0) != (ib < 0))
        return UINT64_MAX;
    return static_cast<uint64_t>(
        std::abs(static_cast<int64_t>(ia) - static_cast<int64_t>(ib)));
}

/**
 * Optimized kernels accumulate in 4 float lanes where the oracle
 * accumulates in one double, so "equal" means: identical bits, or
 * within a ulp budget, or within a tiny absolute band (values that
 * cancel toward zero lose relative precision without being wrong).
 */
void
expectUlpClose(float a, float b, const char *what, uint64_t max_ulps = 4096)
{
    if (std::abs(a - b) <= 1e-5f)
        return;
    EXPECT_LE(ulpDiff(a, b), max_ulps)
        << what << ": " << a << " vs " << b;
}

void
expectMatrixClose(const Matrix &a, const Matrix &b, const char *what)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            expectUlpClose(a(r, c), b(r, c), what);
}

void
expectCsrClose(const sparse::Csr &a, const sparse::Csr &b,
               const char *what)
{
    ASSERT_EQ(a.rowPtr(), b.rowPtr()) << what;
    ASSERT_EQ(a.colIdx(), b.colIdx()) << what;
    ASSERT_EQ(a.values().size(), b.values().size()) << what;
    for (size_t i = 0; i < a.values().size(); ++i)
        expectUlpClose(a.values()[i], b.values()[i], what);
}

/** Random mask at the target sparsity; row 0 is forced empty to
 *  cover the fully-masked-row path. */
sparse::BitMask
randomMask(size_t n, double sparsity, Rng &rng)
{
    sparse::BitMask mask(n, n);
    const auto target = static_cast<size_t>(
        static_cast<double>(n * n) * (1.0 - sparsity));
    size_t nnz = 0;
    while (nnz < target) {
        const auto r = static_cast<size_t>(rng.uniformInt(n));
        const auto c = static_cast<size_t>(rng.uniformInt(n));
        if (r == 0 || mask.get(r, c))
            continue;
        mask.set(r, c, true);
        ++nnz;
    }
    return mask;
}

constexpr double kSparsities[] = {0.50, 0.70, 0.85, 0.90, 0.95, 0.98};

TEST(KernelEngine, SddmmMatchesOracleAcrossSparsities)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(7);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto ref = sddmm(q, k, mask, 0.125f);
        const auto got = opt.sddmm(q, k, mask, 0.125f);
        expectCsrClose(got, ref, "sddmm");
    }
}

TEST(KernelEngine, CscAndCsrSddmmPathsAgreeBitwise)
{
    // Same dot4 inner loop, different traversal order: results must
    // be bitwise identical, not merely close.
    const KernelEngine always_csc({.mode = DispatchMode::Optimized,
                                   .cscSparsityThreshold = 0.0});
    const KernelEngine never_csc({.mode = DispatchMode::Optimized,
                                  .cscSparsityThreshold = 2.0});
    Rng rng(11);
    const auto q = Matrix::randomNormal(128, 48, rng);
    const auto k = Matrix::randomNormal(128, 48, rng);
    for (double sp : {0.6, 0.9}) {
        const auto mask = randomMask(128, sp, rng);
        const auto a = always_csc.sddmm(q, k, mask, 1.0f);
        const auto b = never_csc.sddmm(q, k, mask, 1.0f);
        EXPECT_EQ(a.values(), b.values());
        EXPECT_EQ(a.colIdx(), b.colIdx());
    }
    EXPECT_GT(always_csc.stats().sddmmCsc, 0u);
    EXPECT_GT(never_csc.stats().sddmmCsr, 0u);
    EXPECT_EQ(always_csc.stats().sddmmCsr, 0u);
}

TEST(KernelEngine, MaskedSoftmaxMatchesOracle)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(13);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto s = sddmm(q, k, mask, 0.125f);
        const auto ref = maskedSoftmaxRows(s);
        const auto got = opt.maskedSoftmaxRows(s);
        expectCsrClose(got, ref, "maskedSoftmax");
        // Rows must still sum to 1.
        for (size_t r = 1; r < got.rows(); ++r) {
            if (got.rowNnz(r) == 0)
                continue;
            double sum = 0.0;
            for (uint32_t i = got.rowPtr()[r]; i < got.rowPtr()[r + 1];
                 ++i)
                sum += got.values()[i];
            EXPECT_NEAR(sum, 1.0, 1e-5);
        }
    }
}

TEST(KernelEngine, SpmmMatchesOracle)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(17);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto s = maskedSoftmaxRows(sddmm(q, k, mask, 0.125f));
        expectMatrixClose(opt.spmm(s, v), spmm(s, v), "spmm");
    }
}

TEST(KernelEngine, FusedSparseAttentionMatchesComposedOracle)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(19);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    for (double sp : kSparsities) {
        const auto mask = randomMask(196, sp, rng);
        const auto ref = spmm(
            maskedSoftmaxRows(sddmm(q, k, mask, 0.125f)), v);
        expectMatrixClose(opt.sparseAttention(q, k, v, mask, 0.125f),
                          ref, "sparseAttention");
    }
}

TEST(KernelEngine, GemmMatchesOracleBitwise)
{
    // Identical accumulation order (ascending k per output element):
    // the blocked path must be bit-for-bit the reference.
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(23);
    const auto a = Matrix::randomNormal(197, 384, rng);
    const auto b = Matrix::randomNormal(384, 384, rng);
    EXPECT_TRUE(opt.gemm(a, b) == gemm(a, b));
}

TEST(KernelEngine, GemmTransBMatchesOracle)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(29);
    const auto a = Matrix::randomNormal(197, 64, rng);
    const auto b = Matrix::randomNormal(197, 64, rng);
    expectMatrixClose(opt.gemmTransB(a, b), gemmTransB(a, b),
                      "gemmTransB");
}

TEST(KernelEngine, ParallelRunsAreBitwiseDeterministic)
{
    ThreadPool pool(4);
    const KernelEngine par({.mode = DispatchMode::Optimized,
                            .rowPanel = 8,
                            .minParallelMacs = 1},
                           &pool);
    const KernelEngine ser({.mode = DispatchMode::Optimized});
    Rng rng(31);
    const auto q = Matrix::randomNormal(196, 64, rng);
    const auto k = Matrix::randomNormal(196, 64, rng);
    const auto v = Matrix::randomNormal(196, 64, rng);
    const auto mask = randomMask(196, 0.9, rng);

    const Matrix serial = ser.sparseAttention(q, k, v, mask, 0.125f);
    for (int run = 0; run < 8; ++run) {
        const Matrix p = par.sparseAttention(q, k, v, mask, 0.125f);
        EXPECT_TRUE(p == serial) << "parallel run " << run;
    }
    EXPECT_GT(par.stats().parallelLaunches, 0u);
}

TEST(KernelEngine, AutoModeDispatchesBySize)
{
    const KernelEngine eng{EngineConfig{}};
    Rng rng(37);
    // Tiny: reference path.
    const auto a_small = Matrix::randomNormal(4, 4, rng);
    const auto b_small = Matrix::randomNormal(4, 4, rng);
    (void)eng.gemm(a_small, b_small);
    EXPECT_EQ(eng.stats().gemmOptimized, 0u);
    EXPECT_EQ(eng.stats().gemmReference, 1u);
    // Big: optimized path.
    const auto a_big = Matrix::randomNormal(196, 384, rng);
    const auto b_big = Matrix::randomNormal(384, 384, rng);
    (void)eng.gemm(a_big, b_big);
    EXPECT_EQ(eng.stats().gemmOptimized, 1u);

    eng.resetStats();
    EXPECT_EQ(eng.stats().gemmOptimized, 0u);
}

TEST(KernelEngine, ReferenceModePinsTheOracle)
{
    const KernelEngine ref({.mode = DispatchMode::Reference});
    Rng rng(41);
    const auto q = Matrix::randomNormal(64, 32, rng);
    const auto k = Matrix::randomNormal(64, 32, rng);
    const auto mask = randomMask(64, 0.9, rng);
    const auto a = ref.sddmm(q, k, mask, 1.0f);
    const auto b = sddmm(q, k, mask, 1.0f);
    EXPECT_EQ(a.values(), b.values());
    EXPECT_EQ(ref.stats().sddmmReference, 1u);
    EXPECT_EQ(ref.stats().sddmmCsr + ref.stats().sddmmCsc, 0u);
}

TEST(KernelEngine, EmptyAndFullMasksAreHandled)
{
    const KernelEngine opt({.mode = DispatchMode::Optimized});
    Rng rng(43);
    const auto q = Matrix::randomNormal(16, 8, rng);
    const auto k = Matrix::randomNormal(16, 8, rng);
    const auto v = Matrix::randomNormal(16, 8, rng);

    sparse::BitMask empty(16, 16);
    const auto out_empty = opt.sparseAttention(q, k, v, empty, 1.0f);
    EXPECT_EQ(out_empty, Matrix(16, 8)); // all-zero

    sparse::BitMask full(16, 16);
    for (size_t r = 0; r < 16; ++r)
        for (size_t c = 0; c < 16; ++c)
            full.set(r, c, true);
    const auto ref = spmm(maskedSoftmaxRows(sddmm(q, k, full, 1.0f)), v);
    expectMatrixClose(opt.sparseAttention(q, k, v, full, 1.0f), ref,
                      "full mask");
}

} // namespace
} // namespace vitcod::linalg
