/**
 * @file
 * Tests of the quantization module, including the property that
 * low-precision mask prediction preserves top-k score ranking —
 * the correctness requirement behind Sanger's 4-bit prediction and
 * the reason quantized prediction is usable at all.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "linalg/kernels.h"
#include "linalg/quantize.h"

namespace vitcod::linalg {
namespace {

TEST(Quantize, RoundTripWithinOneStep)
{
    Rng rng(1);
    const Matrix a = Matrix::randomNormal(16, 16, rng, 0.0f, 2.0f);
    const QuantizedMatrix q = quantize(a, 8);
    const double err = maxAbsDiff(a, dequantize(q));
    EXPECT_LE(err, q.scales[0] * 0.5 + 1e-6);
}

TEST(Quantize, MoreBitsLessError)
{
    Rng rng(2);
    const Matrix a = Matrix::randomNormal(32, 32, rng);
    double prev = 1e9;
    for (int bits : {4, 6, 8, 12}) {
        const double err = quantizationError(a, bits);
        EXPECT_LT(err, prev);
        prev = err;
    }
}

TEST(Quantize, PerRowTighterThanPerTensorOnSkewedRows)
{
    // One huge row would blow up a per-tensor scale.
    Rng rng(3);
    Matrix a = Matrix::randomNormal(8, 16, rng, 0.0f, 0.1f);
    for (size_t c = 0; c < 16; ++c)
        a(0, c) *= 100.0f;
    EXPECT_LT(quantizationError(a, 8, /*per_row=*/true),
              quantizationError(a, 8, /*per_row=*/false));
}

TEST(Quantize, CodesWithinRange)
{
    Rng rng(4);
    const Matrix a = Matrix::randomNormal(10, 10, rng, 0.0f, 5.0f);
    const QuantizedMatrix q = quantize(a, 4);
    for (int16_t c : q.codes) {
        EXPECT_GE(c, -q.qmax());
        EXPECT_LE(c, q.qmax());
    }
}

TEST(Quantize, ZeroMatrixStaysZero)
{
    Matrix a(5, 5);
    const Matrix back = dequantize(quantize(a, 8));
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, back), 0.0);
}

TEST(Quantize, StorageAccounting)
{
    Rng rng(5);
    const Matrix a = Matrix::randomNormal(64, 64, rng);
    // 4-bit codes: 64*64/2 bytes + one scale.
    EXPECT_EQ(quantize(a, 4).storageBytes(),
              64u * 64u / 2u + sizeof(float));
    // per-row 8-bit: 64*64 bytes + 64 scales.
    EXPECT_EQ(quantize(a, 8, true).storageBytes(),
              64u * 64u + 64u * sizeof(float));
}

TEST(Quantize, PredictedScoresCloseToExact)
{
    Rng rng(6);
    const Matrix q = Matrix::randomNormal(24, 32, rng);
    const Matrix k = Matrix::randomNormal(24, 32, rng);
    const Matrix exact = gemmTransB(q, k);
    const Matrix pred = quantizedScores(q, k, 8);
    EXPECT_LT(maxAbsDiff(exact, pred), 0.25);
}

/** 4-bit prediction must mostly preserve each row's top-k set. */
class PredictionRanking : public ::testing::TestWithParam<int>
{};

TEST_P(PredictionRanking, TopQuarterOverlapHigh)
{
    const int bits = GetParam();
    Rng rng(7);
    const size_t n = 48;
    const Matrix q = Matrix::randomNormal(n, 64, rng);
    const Matrix k = Matrix::randomNormal(n, 64, rng);
    const Matrix exact = gemmTransB(q, k);
    const Matrix pred = quantizedScores(q, k, bits);

    const size_t topk = n / 4;
    double overlap_sum = 0.0;
    for (size_t r = 0; r < n; ++r) {
        auto top_of = [&](const Matrix &m) {
            std::vector<uint32_t> idx(n);
            std::iota(idx.begin(), idx.end(), 0);
            std::partial_sort(idx.begin(), idx.begin() + topk,
                              idx.end(), [&](uint32_t a, uint32_t b) {
                                  return m(r, a) > m(r, b);
                              });
            idx.resize(topk);
            std::sort(idx.begin(), idx.end());
            return idx;
        };
        const auto te = top_of(exact);
        const auto tp = top_of(pred);
        std::vector<uint32_t> inter;
        std::set_intersection(te.begin(), te.end(), tp.begin(),
                              tp.end(), std::back_inserter(inter));
        overlap_sum += static_cast<double>(inter.size()) /
                       static_cast<double>(topk);
    }
    const double mean_overlap = overlap_sum / static_cast<double>(n);
    // 4-bit prediction keeps most of the top set; 8-bit nearly all.
    EXPECT_GT(mean_overlap, bits >= 8 ? 0.95 : 0.75) << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, PredictionRanking,
                         ::testing::Values(4, 6, 8));

TEST(QuantizeDeath, RejectsBadBitWidths)
{
    Matrix a(2, 2);
    EXPECT_DEATH(quantize(a, 1), "bits");
    EXPECT_DEATH(quantize(a, 17), "bits");
}

} // namespace
} // namespace vitcod::linalg
