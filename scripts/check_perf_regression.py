#!/usr/bin/env python3
"""Perf-regression gate for the kernel engine (CI: perf-smoke job).

Compares `bench_engine --json` output (one JSON object per line)
against the checked-in baseline, row by row:

    python3 scripts/check_perf_regression.py \
        --baseline bench/baselines/engine_baseline.json \
        --current engine_results.jsonl

A baseline row matches a current row when every identity key
(bench, kernel, n, d, sparsity, threads) agrees. For each matched
row the gate requires

    current.speedup >= baseline.speedup * (1 - tolerance)

plus, when the baseline row carries `min_speedup`, the absolute
floor `current.speedup >= min_speedup` (the acceptance criterion,
e.g. >= 3x single-thread for sparse attention at 90% sparsity).

Speedups are ratios of two timings from the same run, so the gate
is robust to absolute runner speed. A baseline row with no matching
current row fails the gate — silent coverage loss must not pass.

To update the baseline after an intentional perf change, run
bench_engine --json on a quiet machine and copy the speedup values
(rounded *down* a little for headroom) into engine_baseline.json.
"""

import argparse
import json
import sys

IDENTITY_KEYS = ("bench", "kernel", "n", "d", "sparsity", "threads")


def row_identity(row):
    return tuple(row.get(k) for k in IDENTITY_KEYS)


def load_current(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "speedup" in row:
                rows[row_identity(row)] = row
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else baseline.get("tolerance", 0.20)
    )
    current = load_current(args.current)

    failures = []
    print(
        f"{'row':<58} {'base':>6} {'floor':>6} {'now':>7}  verdict"
    )
    for brow in baseline["rows"]:
        ident = row_identity(brow)
        label = " ".join(
            f"{k}={v}" for k, v in zip(IDENTITY_KEYS, ident) if v is not None
        )
        crow = current.get(ident)
        if crow is None:
            print(f"{label:<58} {'-':>6} {'-':>6} {'MISSING':>7}  FAIL")
            failures.append(f"{label}: no matching bench row")
            continue
        base = float(brow["speedup"])
        floor = base * (1.0 - tolerance)
        if "min_speedup" in brow:
            floor = max(floor, float(brow["min_speedup"]))
        now = float(crow["speedup"])
        ok = now >= floor
        print(
            f"{label:<58} {base:>6.2f} {floor:>6.2f} {now:>7.2f}  "
            f"{'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"{label}: speedup {now:.2f} < floor {floor:.2f}"
            )

    if failures:
        print(
            f"\nPERF REGRESSION ({len(failures)} row(s) below "
            "baseline):",
            file=sys.stderr,
        )
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nall rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
