#!/usr/bin/env python3
"""Perf-regression gate for JSON bench output (CI: perf-smoke job).

Compares a bench's --json output (one JSON object per line) against
the checked-in baseline, row by row:

    python3 scripts/check_perf_regression.py \
        --baseline bench/baselines/engine_baseline.json \
        --current engine_results.jsonl

A baseline row matches a current row when every identity key
(bench, kernel, n, d, sparsity, threads, isa) agrees. For each
matched row the gate checks the baseline row's "metric" field
(default "speedup") in the current row. The default mode is
relative, higher-is-better:

    current[metric] >= baseline[metric] * (1 - tolerance)

Baseline row options:

  "direction": "lower"  — lower is better; the relative bound flips
        to current <= base * (1 + tolerance) (e.g. p99 latency).
  "min_value" / "max_value" — absolute floor/ceiling applied on top
        of the relative bound ("min_speedup" is a legacy alias of
        min_value; e.g. AVX2 >= 3x over optimized scalar for sparse
        attention at 90% sparsity, threads=1).
  "gate": "absolute"    — skip the relative check entirely; only
        min_value/max_value apply. Use for metrics whose absolute
        level is the contract and whose run-to-run spread exceeds
        any sensible relative tolerance (e.g. the serving soak's
        shed_rate, which must merely stay in its working band on
        runners of very different speeds).

ISA coverage depends on the runner: bench_engine emits a row with
"skipped": 1 for every level compiled into the binary that the host
CPU cannot execute. A baseline row matching such a skip row is
reported as SKIP (with a notice) instead of failing the gate — a
CI runner without AVX-512 must not fail the AVX-512 rows. A
baseline row with no matching current row at all still fails —
silent coverage loss must not pass.

Speedups are ratios of two timings from the same run, so the gate
is robust to absolute runner speed. To update the baseline after an
intentional perf change, run bench_engine --json on a quiet machine
and copy the speedup values (rounded *down* a little for headroom)
into engine_baseline.json.
"""

import argparse
import json
import sys

IDENTITY_KEYS = ("bench", "kernel", "n", "d", "sparsity", "threads", "isa")


def row_identity(row):
    return tuple(row.get(k) for k in IDENTITY_KEYS)


def load_current(path):
    rows = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if "bench" in row or row.get("skipped"):
                rows[row_identity(row)] = row
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the baseline file's tolerance",
    )
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else baseline.get("tolerance", 0.20)
    )
    current = load_current(args.current)

    failures = []
    skips = []
    print(
        f"{'row':<58} {'base':>6} {'floor':>6} {'now':>7}  verdict"
    )
    for brow in baseline["rows"]:
        ident = row_identity(brow)
        label = " ".join(
            f"{k}={v}" for k, v in zip(IDENTITY_KEYS, ident) if v is not None
        )
        crow = current.get(ident)
        if crow is None:
            print(f"{label:<58} {'-':>6} {'-':>6} {'MISSING':>7}  FAIL")
            failures.append(f"{label}: no matching bench row")
            continue
        if crow.get("skipped"):
            reason = crow.get("reason", "unsupported on this runner")
            print(f"{label:<58} {'-':>6} {'-':>6} {'-':>7}  SKIP ({reason})")
            skips.append(f"{label}: {reason}")
            continue
        metric = brow.get("metric", "speedup")
        if metric not in crow:
            print(f"{label:<58} {'-':>6} {'-':>6} {'MISSING':>7}  FAIL")
            failures.append(f"{label}: current row lacks '{metric}'")
            continue
        lower_better = brow.get("direction") == "lower"
        relative = brow.get("gate") != "absolute"
        base = float(brow[metric]) if metric in brow else None

        floor = -float("inf")
        ceiling = float("inf")
        if relative and base is not None:
            if lower_better:
                ceiling = base * (1.0 + tolerance)
            else:
                floor = base * (1.0 - tolerance)
        for k in ("min_speedup", "min_value"):
            if k in brow:
                floor = max(floor, float(brow[k]))
        if "max_value" in brow:
            ceiling = min(ceiling, float(brow["max_value"]))

        now = float(crow[metric])
        ok = floor <= now <= ceiling
        bound = ceiling if lower_better or ceiling < float("inf") \
            else floor
        print(
            f"{label:<58} "
            f"{base if base is not None else float('nan'):>6.2f} "
            f"{bound:>6.2f} {now:>7.2f}  {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            side = "<" if now < floor else ">"
            limit = floor if now < floor else ceiling
            failures.append(
                f"{label}: {metric} {now:.3f} {side} bound "
                f"{limit:.3f}"
            )

    if skips:
        print(
            f"\nnotice: {len(skips)} row(s) skipped "
            "(ISA not supported by this runner):"
        )
        for s in skips:
            print(f"  {s}")
    if failures:
        print(
            f"\nPERF REGRESSION ({len(failures)} row(s) below "
            "baseline):",
            file=sys.stderr,
        )
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nall gated rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
