#!/usr/bin/env python3
"""Check that every intra-repo Markdown link resolves.

Dependency-free (stdlib only). Walks the repository's tracked-ish
Markdown files (skipping build trees and .git), extracts inline
links/images `[text](target)`, and verifies that

  - relative file targets exist (resolved against the linking file),
  - fragment targets (`file.md#section` or `#section`) match a
    GitHub-style heading slug in the target file.

External links (http/https/mailto) are ignored: CI must not depend
on the network. Exit status 1 with one line per broken link.

Usage: python3 scripts/check_links.py [repo_root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".ccache", "__pycache__"}
SKIP_PREFIXES = ("build",)  # build/, build-asan/, build-docs/, ...

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code_blocks(lines):
    """Yield (lineno, line) outside fenced code blocks."""
    fenced = False
    for i, line in enumerate(lines, 1):
        if CODE_FENCE_RE.match(line):
            fenced = not fenced
            continue
        if not fenced:
            yield i, line


def github_slug(heading):
    """GitHub's anchor algorithm: lowercase, drop punctuation,
    spaces to hyphens. Inline code/links inside headings keep their
    text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()
    for _, line in strip_code_blocks(lines):
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path, root):
    errors = []
    with open(md_path, encoding="utf-8") as f:
        lines = f.readlines()
    for lineno, line in strip_code_blocks(lines):
        line = re.sub(r"`[^`]*`", "", line)  # inline code spans
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part)
                )
                if not os.path.exists(resolved):
                    errors.append(
                        (lineno, target, "file not found")
                    )
                    continue
            else:
                resolved = md_path
            if fragment:
                if not resolved.lower().endswith(".md"):
                    continue  # anchors into non-Markdown: skip
                if fragment not in heading_slugs(resolved):
                    errors.append(
                        (lineno, target, "no such heading anchor")
                    )
    return [
        f"{os.path.relpath(md_path, root)}:{lineno}: "
        f"broken link '{target}' ({why})"
        for lineno, target, why in errors
    ]


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = sorted(markdown_files(root))
    if not files:
        print(f"check_links: no Markdown files under {root}")
        return 1
    broken = []
    for path in files:
        broken.extend(check_file(path, root))
    for line in broken:
        print(line)
    print(
        f"check_links: {len(files)} files, "
        f"{len(broken)} broken link(s)"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
