#!/usr/bin/env python3
"""Validator for the telemetry layer's Chrome trace_event JSON.

Dependency-free (stdlib json only); run by the examples-smoke CI job
against the trace that `serve_traffic --trace=...` exports, and
usable by hand on any trace the obs layer writes:

    python3 scripts/check_trace.py out.json [--require-flow]

Checks:

  * top-level schema: an object with a `traceEvents` list;
  * per-event schema by phase — every event needs `name`, `ph`,
    `pid`, `tid`; timed phases need an integer `ts >= 0`; complete
    slices (X) need `dur >= 0`; counters (C) need a numeric
    `args.value`; instants (i) need a valid scope `s`; flow events
    (s/t/f) need an `id`, and flow ends a `bp` binding point;
  * begin/end (B/E) events, if a producer emits them, must balance
    per thread track with E never preceding its B;
  * timestamps are globally non-decreasing (the exporter sorts the
    merged rings) and slices never extend past the trace end by more
    than a slack factor;
  * thread-track consistency: every (pid, tid) that carries events
    has exactly one `thread_name` metadata record, and metadata
    precedes the track's first event;
  * with --require-flow (the serve_traffic acceptance check): at
    least one flow id forms a continuous s -> t* -> f chain that
    crosses thread tracks, and kernel-category (`engine`) slices are
    present — i.e. a request demonstrably flowed from submit through
    batch dispatch into real kernel execution.

Exit status 0 on success, 1 with a per-failure listing otherwise.
"""

import argparse
import json
import sys

TIMED_PHASES = {"X", "B", "E", "i", "C", "s", "t", "f"}
INSTANT_SCOPES = {"g", "p", "t"}


def fail(failures, msg):
    failures.append(msg)


def check_event(ev, idx, failures):
    """Schema check for one event; returns False to skip it in the
    aggregate checks."""
    if not isinstance(ev, dict):
        fail(failures, f"event {idx}: not an object")
        return False
    for key in ("name", "ph", "pid", "tid"):
        if key not in ev:
            fail(failures, f"event {idx}: missing '{key}'")
            return False
    ph = ev["ph"]
    if ph == "M":
        if ev["name"] in ("thread_name", "process_name"):
            if "name" not in ev.get("args", {}):
                fail(failures,
                     f"event {idx}: {ev['name']} metadata without "
                     "args.name")
        return True
    if ph not in TIMED_PHASES:
        fail(failures, f"event {idx}: unknown phase '{ph}'")
        return False
    ts = ev.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        fail(failures, f"event {idx} ({ev['name']}): bad ts {ts!r}")
        return False
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            fail(failures,
                 f"event {idx} ({ev['name']}): X slice with bad "
                 f"dur {dur!r}")
    elif ph == "C":
        value = ev.get("args", {}).get("value")
        if not isinstance(value, (int, float)):
            fail(failures,
                 f"event {idx} ({ev['name']}): counter without "
                 "numeric args.value")
    elif ph == "i":
        if ev.get("s") not in INSTANT_SCOPES:
            fail(failures,
                 f"event {idx} ({ev['name']}): instant with bad "
                 f"scope {ev.get('s')!r}")
    elif ph in ("s", "t", "f"):
        if "id" not in ev:
            fail(failures,
                 f"event {idx} ({ev['name']}): flow event without id")
        if ph == "f" and ev.get("bp") != "e":
            fail(failures,
                 f"event {idx} ({ev['name']}): flow end without "
                 "bp='e' binding")
    return True


def check_flow(events, failures):
    """--require-flow: a request must traverse submit -> dispatch ->
    kernel execution, visibly."""
    flows = {}
    for ev in events:
        if ev["ph"] in ("s", "t", "f"):
            flows.setdefault((ev["name"], ev.get("id")), []).append(ev)

    complete = []
    for (name, fid), evs in flows.items():
        phases = [e["ph"] for e in evs]
        if "s" not in phases or "f" not in phases:
            continue
        if phases.index("s") != 0 or phases[-1] != "f":
            fail(failures,
                 f"flow {name}#{fid}: phases out of order: {phases}")
            continue
        complete.append((name, fid, evs))
    if not complete:
        fail(failures,
             "no complete flow (s ... f) found; request lifecycles "
             "are not linked")
        return

    if not any(
            len({(e["pid"], e["tid"]) for e in evs}) >= 2
            for _, _, evs in complete):
        fail(failures,
             "no flow crosses thread tracks; submit and execution "
             "appear to share one thread")

    if not any(ev["ph"] == "X" and ev.get("cat") == "engine"
               for ev in events):
        fail(failures,
             "no engine-category kernel slices; the traced pass did "
             "not reach real kernel execution")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace_event JSON file")
    ap.add_argument(
        "--require-flow",
        action="store_true",
        help="additionally require a cross-thread request flow "
        "reaching engine kernel slices",
    )
    args = ap.parse_args()

    failures = []
    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot load {args.trace}: {e}")
        return 1

    if not isinstance(trace, dict) or not isinstance(
            trace.get("traceEvents"), list):
        print("check_trace: top level must be an object with a "
              "traceEvents list")
        return 1

    raw = trace["traceEvents"]
    events = []
    for idx, ev in enumerate(raw):
        if check_event(ev, idx, failures) and ev.get("ph") != "M":
            events.append(ev)

    # Global timestamp order (the exporter merges rings sorted).
    prev_ts = None
    for ev in events:
        if prev_ts is not None and ev["ts"] < prev_ts:
            fail(failures,
                 f"timestamps regress: {ev['ts']} after {prev_ts} "
                 f"(event '{ev['name']}')")
            break
        prev_ts = ev["ts"]

    # Slices must stay within the trace's time range (generous 2x
    # slack for a final slice closing after the last instant).
    if events:
        end = max(e["ts"] + e.get("dur", 0) for e in events)
        for ev in events:
            if ev["ph"] == "X" and ev["ts"] + ev["dur"] > 2 * end:
                fail(failures,
                     f"slice '{ev['name']}' extends implausibly far "
                     "past the trace end")

    # B/E balance per thread track.
    depth = {}
    for ev in events:
        track = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ev["ph"] == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                fail(failures,
                     f"track {track}: E without a matching B at "
                     f"ts={ev['ts']}")
    for track, d in depth.items():
        if d > 0:
            fail(failures, f"track {track}: {d} unclosed B event(s)")

    # Thread-track metadata: one thread_name per active track,
    # emitted before the track's first real event.
    named = {}
    for idx, ev in enumerate(raw):
        if isinstance(ev, dict) and ev.get("ph") == "M" and \
                ev.get("name") == "thread_name":
            track = (ev.get("pid"), ev.get("tid"))
            if track in named:
                fail(failures,
                     f"track {track}: duplicate thread_name metadata")
            named[track] = idx
    first_event = {}
    for idx, ev in enumerate(raw):
        if isinstance(ev, dict) and ev.get("ph") in TIMED_PHASES:
            first_event.setdefault((ev["pid"], ev["tid"]), idx)
    for track, idx in sorted(first_event.items()):
        if track not in named:
            fail(failures, f"track {track}: no thread_name metadata")
        elif named[track] > idx:
            fail(failures,
                 f"track {track}: thread_name metadata after the "
                 "track's first event")

    if args.require_flow:
        check_flow(events, failures)

    if failures:
        print(f"check_trace: {args.trace}: {len(failures)} failure(s)")
        for f_ in failures:
            print(f"  - {f_}")
        return 1

    tracks = len(first_event)
    flows = len({(e["name"], e.get("id"))
                 for e in events if e["ph"] in ("s", "t", "f")})
    print(f"check_trace: {args.trace}: ok "
          f"({len(events)} events, {tracks} thread tracks, "
          f"{flows} flows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
