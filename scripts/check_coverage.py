#!/usr/bin/env python3
"""Line-coverage gate for the coverage CI job.

Aggregates gcov line coverage over a VITCOD_COVERAGE=ON build after
the test suite ran (so .gcda files exist), then fails when overall
line coverage of files under --source drops below --min-line:

    python3 scripts/check_coverage.py \
        --build build-cov --source src --min-line 70 \
        --report coverage_report.txt

Implementation notes: every *.gcda in the build tree is fed to
`gcov --json-format --stdout`, which needs no third-party tooling
(no gcovr/lcov). A header compiled into many translation units is
counted once, merging execution counts per line with max() — a line
is covered if ANY unit executed it. The floor is a ratchet against
silent coverage loss, not a target: raise it when real coverage
grows, never lower it to make a PR pass.
"""

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for f in files:
            if f.endswith(".gcda"):
                yield os.path.join(root, f)


def gcov_json(gcda_path, gcov_tool):
    """Run gcov in JSON mode; returns parsed docs (one per .gcda)."""
    res = subprocess.run(
        [gcov_tool, "--json-format", "--stdout", gcda_path],
        capture_output=True,
        text=True,
    )
    if res.returncode != 0:
        print(
            f"warning: {gcov_tool} failed on {gcda_path}: "
            f"{res.stderr.strip()}",
            file=sys.stderr,
        )
        return []
    docs = []
    for line in res.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", required=True, help="build directory")
    ap.add_argument(
        "--source",
        default="src",
        help="only count files under this prefix (repo-relative)",
    )
    ap.add_argument("--min-line", type=float, default=0.0)
    ap.add_argument("--gcov", default="gcov")
    ap.add_argument("--report", default=None)
    args = ap.parse_args()

    source_prefix = os.path.abspath(args.source) + os.sep

    # file -> line -> max execution count across translation units.
    coverage = {}
    gcda_count = 0
    for gcda in find_gcda(args.build):
        gcda_count += 1
        for doc in gcov_json(gcda, args.gcov):
            for frec in doc.get("files", []):
                path = os.path.abspath(frec.get("file", ""))
                if not path.startswith(source_prefix):
                    continue
                lines = coverage.setdefault(path, {})
                for lrec in frec.get("lines", []):
                    no = lrec.get("line_number")
                    count = lrec.get("count", 0)
                    if no is None:
                        continue
                    lines[no] = max(lines.get(no, 0), count)

    if gcda_count == 0:
        print(
            f"error: no .gcda files under {args.build} — build with "
            "-DVITCOD_COVERAGE=ON and run the tests first",
            file=sys.stderr,
        )
        return 1
    if not coverage:
        print(
            f"error: no coverage records under {source_prefix}",
            file=sys.stderr,
        )
        return 1

    rows = []
    total_lines = 0
    total_covered = 0
    for path in sorted(coverage):
        lines = coverage[path]
        n = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        total_lines += n
        total_covered += covered
        rel = os.path.relpath(path)
        rows.append((rel, covered, n, 100.0 * covered / n if n else 0))

    pct = 100.0 * total_covered / total_lines
    out_lines = [f"{'file':<52} {'cov':>6} {'lines':>6} {'pct':>7}"]
    for rel, covered, n, p in rows:
        out_lines.append(f"{rel:<52} {covered:>6} {n:>6} {p:>6.1f}%")
    out_lines.append(
        f"{'TOTAL':<52} {total_covered:>6} {total_lines:>6} "
        f"{pct:>6.1f}%"
    )
    report = "\n".join(out_lines)
    print(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report + "\n")

    if pct < args.min_line:
        print(
            f"\nCOVERAGE REGRESSION: line coverage {pct:.1f}% is "
            f"below the floor {args.min_line:.1f}%",
            file=sys.stderr,
        )
        return 1
    print(f"\nline coverage {pct:.1f}% >= floor {args.min_line:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
