/**
 * @file
 * Whole-model execution walkthrough: build the ViTCoD plan for
 * DeiT-Tiny, draw a random weight set, run a full forward pass
 * through the ModelExecutor on the shared kernel engine, and print
 * the per-layer latency/dispatch breakdown the ExecTrace records —
 * the end-to-end view the serving runtime's "ModelExec" backend
 * serves under traffic.
 *
 *   ./build/examples/run_model [model-name] [sparsity]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/table.h"
#include "core/model_exec/model_executor.h"
#include "core/pipeline.h"

using namespace vitcod;
using core::model_exec::ExecTrace;
using core::model_exec::ExecutorConfig;
using core::model_exec::LayerTrace;
using core::model_exec::ModelExecutor;
using core::model_exec::ModelWeights;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "DeiT-Tiny";
    const double sparsity = argc > 2 ? std::atof(argv[2]) : 0.9;

    const auto m = model::modelByName(name);
    std::printf("building ViTCoD plan for %s at %.0f%% sparsity...\n",
                m.name.c_str(), sparsity * 100.0);
    const auto plan = core::buildModelPlan(
        m, core::makePipelineConfig(sparsity, /*use_ae=*/true));

    Rng rng(7);
    const size_t num_classes = 1000;
    ModelExecutor exec(
        &plan,
        ModelWeights::random(m, 0, num_classes, rng),
        ExecutorConfig{.numClasses = num_classes});
    std::printf("weights: %zu parameters, arena: %.1f MB\n",
                exec.weights().parameterCount(),
                static_cast<double>(exec.arena().footprintBytes()) /
                    1e6);

    const auto input = linalg::Matrix::randomNormal(
        m.stages[0].tokens, exec.config().inDim, rng);

    // Warm forward (mask structures built), then the traced one.
    (void)exec.forward(input);
    ExecTrace trace;
    const auto logits = exec.forward(input, &trace);

    Table t({"layer", "tokens", "heads", "mask nnz", "qkv ms",
             "attn ms", "proj ms", "mlp ms", "total ms"});
    for (const LayerTrace &lt : trace.layers) {
        size_t nnz = 0;
        for (const auto &ht : lt.headTraces)
            nnz += ht.maskNnz;
        t.row()
            .cell(static_cast<uint64_t>(lt.layer))
            .cell(static_cast<uint64_t>(lt.tokens))
            .cell(static_cast<uint64_t>(lt.heads))
            .cell(static_cast<uint64_t>(nnz))
            .cell(lt.qkvSeconds * 1e3, 3)
            .cell(lt.attnSeconds * 1e3, 3)
            .cell(lt.projSeconds * 1e3, 3)
            .cell(lt.mlpSeconds * 1e3, 3)
            .cell(lt.seconds() * 1e3, 3);
    }
    t.print(std::cout);

    std::printf("\npatch embed %.3f ms, classifier %.3f ms, "
                "total %.3f ms (%.2f GMACs, %.2f GMAC/s)\n",
                trace.patchEmbedSeconds * 1e3,
                trace.classifierSeconds * 1e3,
                trace.totalSeconds * 1e3,
                static_cast<double>(trace.totalMacs) / 1e9,
                static_cast<double>(trace.totalMacs) / 1e9 /
                    trace.totalSeconds);
    std::printf("dispatch: %llu opt GEMMs, %llu CSR + %llu CSC "
                "SDDMMs, %llu structure hits / %llu misses\n",
                static_cast<unsigned long long>(
                    trace.dispatch.gemmOptimized),
                static_cast<unsigned long long>(
                    trace.dispatch.sddmmCsr),
                static_cast<unsigned long long>(
                    trace.dispatch.sddmmCsc),
                static_cast<unsigned long long>(
                    trace.dispatch.structureHits),
                static_cast<unsigned long long>(
                    trace.dispatch.structureMisses));

    // Top-1 of the (random-weight) classifier, to show real logits.
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(0, c) > logits(0, best))
            best = c;
    std::printf("argmax logit: class %zu (%.4f)\n", best,
                logits(0, best));
    return 0;
}
