/**
 * @file
 * DeiT-on-ImageNet walkthrough: runs the full ViTCoD pipeline on
 * the DeiT family at its nominal 90% sparsity and inspects what the
 * algorithm actually produced — per-layer global-token counts, the
 * denser/sparser workload split, AE reconstruction quality — then
 * simulates per-layer attention latency on the accelerator.
 *
 * This is the scenario of the paper's main evaluation (Sec. VI-B/C)
 * and a template for instrumenting your own model configs.
 */

#include <cstdio>
#include <iostream>

#include "accel/vitcod_accel.h"
#include "common/table.h"
#include "core/pipeline.h"
#include "model/flops.h"

int
main()
{
    using namespace vitcod;

    for (const auto &m :
         {model::deitTiny(), model::deitSmall(), model::deitBase()}) {
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(0.9, true));
        accel::ViTCoDAccelerator acc;

        printBanner(std::cout, m.name);
        std::printf("est. top-1 %.2f%% (dense %.1f%%), AE rel. "
                    "error %.3f, compression %.0f%%\n",
                    plan.estimatedQuality, m.baselineQuality,
                    plan.aeRelError,
                    100.0 * plan.aeCompressionRatio());

        Table t({"Layer", "Ngt (mean/head)", "Denser nnz",
                 "Sparser nnz", "Cycles", "DenserLines",
                 "SparserLines", "Util-relevant MACs"});
        const auto shapes = model::attentionShapes(m);
        for (size_t l = 0; l < shapes.size(); ++l) {
            double ngt = 0.0;
            uint64_t denser = 0, sparser = 0;
            for (const auto &h : plan.heads) {
                if (h.layer != l)
                    continue;
                ngt += static_cast<double>(h.plan.numGlobalTokens);
                denser += h.plan.denserNnz;
                sparser += h.plan.sparserNnz;
            }
            ngt /= static_cast<double>(shapes[l].heads);
            const auto st = acc.simulateAttentionLayer(plan, l);
            t.row()
                .cell(static_cast<uint64_t>(l))
                .cell(ngt, 1)
                .cell(static_cast<uint64_t>(denser))
                .cell(static_cast<uint64_t>(sparser))
                .cell(static_cast<uint64_t>(st.total))
                .cell(static_cast<uint64_t>(st.denserLines))
                .cell(static_cast<uint64_t>(st.sparserLines))
                .cell(formatOps(
                    static_cast<double>(st.attentionMacs)));
        }
        t.print(std::cout);

        const auto attn = acc.runAttention(plan);
        const auto e2e = acc.runEndToEnd(plan);
        std::printf("attention: %.1f us | end-to-end: %.2f ms | "
                    "attention DRAM: %s | utilization %.1f%%\n",
                    attn.seconds * 1e6, e2e.seconds * 1e3,
                    formatBytes(static_cast<double>(
                                    attn.dramTotal()))
                        .c_str(),
                    100.0 * e2e.utilization);
    }
    return 0;
}
