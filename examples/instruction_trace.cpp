/**
 * @file
 * The algorithm-hardware interface of the paper's Fig. 14 in
 * action: parse a ViTCoD-trained sparse model, compile it into the
 * accelerator's instruction stream, disassemble the first layer,
 * and execute the program on the interpreter — verifying it costs
 * exactly the same cycles as the analytic simulator ("one-time
 * compilation cost for each task", Sec. V-B3).
 */

#include <cstdio>
#include <iostream>

#include "accel/compiler.h"
#include "core/pipeline.h"

int
main()
{
    using namespace vitcod;

    const auto plan = core::buildModelPlan(
        model::deitTiny(), core::makePipelineConfig(0.9, true));

    accel::Compiler compiler;
    const accel::Program prog =
        compiler.compile(plan, /*end_to_end=*/false);

    std::printf("compiled %s into %zu instructions "
                "(%zu barriers, %zu sparse-SDDMM ops)\n\n",
                prog.modelName.c_str(), prog.code.size(),
                prog.count(accel::Opcode::Barrier),
                prog.count(accel::Opcode::SddmmSparse));

    std::cout << "--- first layer of the stream ---\n";
    prog.disassemble(std::cout, 16);

    accel::Interpreter interp;
    accel::ViTCoDAccelerator sim;
    const accel::RunStats executed = interp.execute(prog);
    const accel::RunStats analytic = sim.runAttention(plan);

    std::printf("\ninterpreter: %llu cycles | analytic simulator: "
                "%llu cycles | %s\n",
                static_cast<unsigned long long>(executed.cycles),
                static_cast<unsigned long long>(analytic.cycles),
                executed.cycles == analytic.cycles
                    ? "exact agreement"
                    : "MISMATCH");
    return executed.cycles == analytic.cycles ? 0 : 1;
}
