/**
 * @file
 * Quickstart: the whole ViTCoD flow in ~40 lines.
 *
 *  1. Pick a ViT model (DeiT-Small).
 *  2. Run the ViTCoD algorithm pipeline — auto-encoder insertion +
 *     split-and-conquer pruning/reordering at 90% sparsity.
 *  3. Simulate the ViTCoD accelerator and a GPU baseline on the
 *     resulting plan and compare.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "accel/platform.h"
#include "accel/vitcod_accel.h"
#include "core/pipeline.h"

int
main()
{
    using namespace vitcod;

    // 1. The model and the algorithm configuration.
    const model::VitModelConfig m = model::deitSmall();
    const core::PipelineConfig cfg =
        core::makePipelineConfig(/*target_sparsity=*/0.9,
                                 /*use_ae=*/true);

    // 2. The ViTCoD algorithm: AE fitting + Algorithm 1 per head.
    const core::ModelPlan plan = core::buildModelPlan(m, cfg);
    std::printf("%s: %zu heads planned, %.1f%% sparsity, "
                "%.1f%% attention mass retained, est. top-1 %.2f%% "
                "(dense: %.1f%%)\n",
                m.name.c_str(), plan.heads.size(),
                100.0 * plan.avgSparsity,
                100.0 * plan.avgRetainedMass, plan.estimatedQuality,
                m.baselineQuality);

    // 3. Hardware: ViTCoD accelerator vs an RTX-2080Ti-class GPU.
    accel::ViTCoDAccelerator vitcod;
    accel::PlatformModel gpu(accel::gpu2080Ti());

    const accel::RunStats on_accel = vitcod.runAttention(plan);
    const accel::RunStats on_gpu = gpu.runAttention(plan);

    std::printf("core attention latency: ViTCoD %.1f us "
                "(%llu cycles) | GPU %.1f us | speedup %.1fx\n",
                on_accel.seconds * 1e6,
                static_cast<unsigned long long>(on_accel.cycles),
                on_gpu.seconds * 1e6,
                on_gpu.seconds / on_accel.seconds);
    std::printf("energy: ViTCoD %.1f uJ | GPU %.1f uJ | ratio %.0fx\n",
                on_accel.energyJoules() * 1e6,
                on_gpu.energyJoules() * 1e6,
                on_gpu.energyJoules() / on_accel.energyJoules());
    return 0;
}
