/**
 * @file
 * Design-space exploration with the DSE engine (src/dse/): instead
 * of hand-picking a handful of configurations, this driver hands the
 * default hardware grid to dse::Explorer, which prices every point
 * through the Schedule IR and reports the Pareto frontier over
 * simulated latency, energy proxy and silicon-area proxy — the
 * "overall design space exploration can provide insights for
 * developing efficient ViT solutions" usage the paper advertises,
 * automated. Runnable companion of docs/DSE.md.
 *
 * Usage: vitcod_design_space [model] [sparsity] [out.json]
 *   model     model::modelByName() name   (default DeiT-Tiny)
 *   sparsity  attention-mask sparsity     (default 0.9)
 *   out.json  write the frontier result file (also .csv alongside)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "dse/explorer.h"

int
main(int argc, char **argv)
{
    using namespace vitcod;

    dse::WorkloadSpec wl;
    wl.model = argc > 1 ? argv[1] : "DeiT-Tiny";
    wl.sparsity = argc > 2 ? std::atof(argv[2]) : 0.9;

    dse::ExplorerConfig ec;
    ec.seed = 1;
    dse::Explorer explorer({wl}, dse::HwConfigSpace::defaultSpace(),
                           ec);

    const dse::Objectives base = explorer.baseline();
    printBanner(std::cout, "Workload " + wl.str() +
                               " on the default accelerator");
    std::cout << "latency " << base.latencySeconds * 1e6
              << " us, energy " << base.energyJoules * 1e6
              << " uJ, area proxy " << base.areaMm2 << " mm^2\n";

    // ---- Exact frontier of the grid.
    dse::DseResult ex = explorer.exhaustive();
    printBanner(std::cout, "Exhaustive grid");
    std::cout << ex.evaluated << " configurations priced in "
              << ex.wallSeconds << " s; frontier keeps "
              << ex.frontier.points().size() << " points\n\n";

    Table t({"MAC lines", "AE", "Split", "QKV KiB", "S KiB", "GB/s",
             "Latency (us)", "Energy (uJ)", "Area (mm^2)"});
    for (const dse::DsePoint &p : ex.frontier.points()) {
        t.row()
            .cell(static_cast<uint64_t>(p.hw.macLines))
            .cell(static_cast<uint64_t>(p.hw.aeLines))
            .cell(p.hw.sparserLineFrac, 2)
            .cell(static_cast<uint64_t>(p.hw.qkvBufBytes / 1024))
            .cell(static_cast<uint64_t>(p.hw.sBufferBytes / 1024))
            .cell(p.hw.bandwidthGBps, 1)
            .cell(p.obj.latencySeconds * 1e6, 2)
            .cell(p.obj.energyJoules * 1e6, 2)
            .cell(p.obj.areaMm2, 3);
    }
    t.print(std::cout);

    // ---- Guided search covers a fraction of the grid.
    const dse::DseResult sa = explorer.anneal();
    printBanner(std::cout, "Simulated annealing (seed 1)");
    std::cout << sa.evaluated << " of " << explorer.space().size()
              << " configurations priced; best latency "
              << sa.frontier.bestLatency().obj.latencySeconds * 1e6
              << " us vs exhaustive "
              << ex.frontier.bestLatency().obj.latencySeconds * 1e6
              << " us\n";

    // ---- Pipelined objective mode: re-run the sweep with the
    // event-driven backpressure model (docs/SIMULATOR.md) on a
    // bandwidth-starved grid where the inter-stage FIFO depth — a
    // knob the analytic recurrence cannot see — becomes a real
    // latency lever. End-to-end scope: the dense block's
    // back-to-back loaded phases are where prefetch depth matters.
    dse::WorkloadSpec pwl = wl;
    pwl.endToEnd = true;
    dse::HwConfigSpace pspace = dse::HwConfigSpace::smokeSpace();
    pspace.bandwidthGBps = {12.8};
    pspace.pipeFifoDepth = {1, 1024};
    pspace.pipeStageLatency = {0, 16};
    pspace.base.pipeline.fifoChunkBytes = 1024;
    dse::ExplorerConfig pec = ec;
    pec.simMode = sim::SimMode::Pipelined;
    dse::Explorer pexplorer({pwl}, pspace, pec);
    const dse::DseResult pex = pexplorer.exhaustive();
    printBanner(std::cout,
                "Pipelined mode on a starved DRAM (12.8 GB/s)");
    std::cout << pex.evaluated
              << " configurations priced under SimMode::Pipelined; "
                 "frontier keeps "
              << pex.frontier.points().size() << " points\n\n";
    Table pt({"MAC lines", "S KiB", "FIFO depth", "Stage lat",
              "Latency (us)", "Energy (uJ)", "Area (mm^2)"});
    for (const dse::DsePoint &p : pex.frontier.points()) {
        pt.row()
            .cell(static_cast<uint64_t>(p.hw.macLines))
            .cell(static_cast<uint64_t>(p.hw.sBufferBytes / 1024))
            .cell(static_cast<uint64_t>(p.hw.pipeFifoDepth))
            .cell(static_cast<uint64_t>(p.hw.pipeStageLatency))
            .cell(p.obj.latencySeconds * 1e6, 2)
            .cell(p.obj.energyJoules * 1e6, 2)
            .cell(p.obj.areaMm2, 3);
    }
    pt.print(std::cout);

    // ---- The co-design payoff: a point that beats the default
    // configuration on latency without paying more silicon.
    const dse::DsePoint *win = nullptr;
    for (const dse::DsePoint &p : ex.frontier.points()) {
        if (p.obj.latencySeconds < base.latencySeconds &&
            p.obj.areaMm2 <= base.areaMm2) {
            win = &p;
            break; // frontier is latency-sorted: first hit is best
        }
    }
    printBanner(std::cout, "Tuned vs default");
    if (win == nullptr) {
        std::cout << "no config dominates the default point in this "
                     "space\n";
        return 1;
    }
    std::cout << "tuned: " << win->hw.macLines << " lines, "
              << win->hw.aeLines << " AE lines, split "
              << win->hw.sparserLineFrac << ", QKV "
              << win->hw.qkvBufBytes / 1024 << " KiB, S "
              << win->hw.sBufferBytes / 1024 << " KiB, "
              << win->hw.bandwidthGBps << " GB/s\n"
              << "  "
              << base.latencySeconds / win->obj.latencySeconds
              << "x faster at "
              << win->obj.areaMm2 / base.areaMm2
              << "x the area proxy of the default accelerator\n";

    if (argc > 3) {
        const std::string json = argv[3];
        ex.frontier.writeJsonFile(json);
        const size_t dot = json.rfind('.');
        const size_t slash = json.rfind('/');
        const bool has_ext =
            dot != std::string::npos &&
            (slash == std::string::npos || dot > slash);
        const std::string csv =
            (has_ext ? json.substr(0, dot) : json) + ".csv";
        ex.frontier.writeCsvFile(csv);
        std::cout << "\nfrontier written to " << json << " and "
                  << csv << " (serve it back with "
                     "ServerConfig::tunedFrontierPath)\n";
    }
    return 0;
}
