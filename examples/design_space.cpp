/**
 * @file
 * Design-space exploration with the public simulator API: sweeps
 * the ViTCoD accelerator's MAC array size, DRAM bandwidth and
 * on-chip buffer budget on DeiT-Base @90% sparsity, reporting
 * latency / energy and the compute-vs-memory balance of each
 * configuration. This is the "overall design space exploration can
 * provide insights for developing efficient ViT solutions" usage
 * the paper advertises.
 */

#include <algorithm>
#include <iostream>

#include "accel/vitcod_accel.h"
#include "common/table.h"
#include "core/pipeline.h"

int
main()
{
    using namespace vitcod;

    const auto plan = core::buildModelPlan(
        model::deitBase(), core::makePipelineConfig(0.9, true));

    printBanner(std::cout,
                "MAC-line sweep (DDR4 76.8 GB/s, 128 KiB act buf)");
    Table t1({"MAC lines", "MACs", "Attn (us)", "Compute%",
              "DataMove%", "Energy (uJ)", "Utilization%"});
    for (size_t lines : {16, 32, 64, 128, 256}) {
        accel::ViTCoDConfig cfg;
        cfg.macArray.macLines = lines;
        cfg.aeLines = std::max<size_t>(1, lines / 4); // scale AE engines
        accel::ViTCoDAccelerator acc(cfg);
        const accel::RunStats rs = acc.runAttention(plan);
        t1.row()
            .cell(static_cast<uint64_t>(lines))
            .cell(static_cast<uint64_t>(lines * 8))
            .cell(rs.seconds * 1e6, 1)
            .cell(100.0 * rs.computeSeconds / rs.seconds, 1)
            .cell(100.0 * rs.dataMoveSeconds / rs.seconds, 1)
            .cell(rs.energyJoules() * 1e6, 1)
            .cell(100.0 * rs.utilization, 1);
    }
    t1.print(std::cout);

    printBanner(std::cout, "DRAM bandwidth sweep (512 MACs)");
    Table t2({"GB/s", "Attn (us)", "Compute%", "DataMove%",
              "Energy (uJ)"});
    for (double bw : {12.8, 25.6, 51.2, 76.8, 153.6, 307.2}) {
        accel::ViTCoDConfig cfg;
        cfg.dram.bandwidthGBps = bw;
        accel::ViTCoDAccelerator acc(cfg);
        const accel::RunStats rs = acc.runAttention(plan);
        t2.row()
            .cell(bw, 1)
            .cell(rs.seconds * 1e6, 1)
            .cell(100.0 * rs.computeSeconds / rs.seconds, 1)
            .cell(100.0 * rs.dataMoveSeconds / rs.seconds, 1)
            .cell(rs.energyJoules() * 1e6, 1);
    }
    t2.print(std::cout);

    printBanner(std::cout,
                "Activation-buffer sweep (residency of compressed "
                "Q; 512 MACs, 76.8 GB/s)");
    Table t3({"Q/K/S/V buf (KiB)", "Attn (us)", "Attn DRAM (KiB)"});
    for (size_t kib : {32, 64, 128, 256, 512}) {
        accel::ViTCoDConfig cfg;
        cfg.qkvBufBytes = kib * 1024;
        accel::ViTCoDAccelerator acc(cfg);
        const accel::RunStats rs = acc.runAttention(plan);
        t3.row()
            .cell(static_cast<uint64_t>(kib))
            .cell(rs.seconds * 1e6, 1)
            .cell(static_cast<double>(rs.dramTotal()) / 1024.0, 0);
    }
    t3.print(std::cout);

    std::cout << "\nReading: the paper's 64-line / 76.8 GB/s / "
                 "128 KiB point sits near the knee of all three "
                 "sweeps - more MACs starve on bandwidth, more "
                 "bandwidth idles the array.\n";
    return 0;
}
