/**
 * @file
 * Serving quickstart: a heterogeneous 4-worker pool (2x the ViTCoD
 * accelerator + 2x the CPU platform model) behind a size-bucketed
 * batch scheduler, under open-loop Poisson traffic mixing two tasks
 * (DeiT-Small @ 90% sparsity, LeViT-128 @ 80%). The load generator
 * sweeps arrival rates with a fresh server per rate (so each row's
 * percentiles cover only that rate's samples) and reports wall-clock
 * p50/p95/p99 latency, throughput, batch sizes, plan-cache hit rate
 * and per-backend utilization.
 *
 * With `--trace=FILE` the last swept rate runs with the telemetry
 * layer recording: one worker is the real-execution ModelExec
 * backend, so the exported Chrome trace_event JSON (load it in
 * Perfetto or chrome://tracing) shows request flow arrows from
 * submit through batch dispatch into actual KernelEngine kernel
 * spans. See docs/OBSERVABILITY.md.
 *
 * Build & run:  ./build/examples/serve_traffic [requests-per-rate]
 *                                              [--trace=FILE]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/load_gen.h"
#include "serve/server.h"

int
main(int argc, char **argv)
{
    using namespace vitcod;

    size_t requests = 1000;
    std::string traceOut;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            traceOut = argv[i] + 8;
        else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
            traceOut = argv[++i];
        else
            requests = static_cast<size_t>(
                std::strtoull(argv[i], nullptr, 10));
    }

    const serve::PlanKey deit{"DeiT-Small", 0.9, true, false};
    const serve::PlanKey levit{"LeViT-128", 0.8, true, false};

    serve::ServerConfig cfg;
    cfg.backends = {"ViTCoD", "ViTCoD", "CPU", "CPU"};
    cfg.scheduler.policy = serve::SchedulerPolicy::SizeBucketed;
    cfg.scheduler.maxBatch = 8;
    cfg.scheduler.maxWaitSeconds = 2e-3;

    std::printf("serve_traffic: %zu workers (2x ViTCoD + 2x CPU), "
                "policy=bucketed maxBatch=8 maxWait=2ms\n",
                cfg.backends.size());
    std::printf("traffic mix: 70%% %s + 30%% %s, open-loop Poisson, "
                "fresh server per rate\n\n",
                deit.str().c_str(), levit.str().c_str());
    std::printf("%9s %9s %9s %9s %9s %9s %9s\n", "rate/s", "achieved",
                "p50 ms", "p95 ms", "p99 ms", "batch", "queue");

    uint64_t totalServed = 0;
    double totalEnergy = 0;
    serve::StatsSnapshot last;
    serve::PlanCache::Stats lastCache;

    for (double rate : {500.0, 1000.0, 2000.0, 4000.0}) {
        serve::InferenceServer server(cfg);
        server.warmup({deit, levit});

        serve::TrafficConfig traffic;
        traffic.ratePerSec = rate;
        traffic.requests = requests;
        traffic.mix = {deit, levit};
        traffic.mixWeights = {0.7, 0.3};
        traffic.seed = 42;

        const serve::TrafficReport rep =
            serve::runPoissonTraffic(server, traffic);
        const serve::StatsSnapshot s = server.snapshot();

        std::printf("%9.0f %9.0f %9.3f %9.3f %9.3f %9.2f %9.2f\n",
                    rep.offeredRatePerSec, rep.achievedRps,
                    s.wallP50 * 1e3, s.wallP95 * 1e3, s.wallP99 * 1e3,
                    s.meanBatchSize, s.meanQueueDepth);

        totalServed += s.completed;
        totalEnergy += s.totalEnergyJoules;
        last = s;
        lastCache = server.planCacheStats();
    }

    if (!traceOut.empty()) {
        // Traced pass: a ModelExec worker executes real KernelEngine
        // forwards, so the trace carries a request flow all the way
        // from submit into kernel spans. Real execution is orders of
        // magnitude slower than the simulator backends, so this pass
        // serves a small fixed load.
        serve::ServerConfig tcfg = cfg;
        tcfg.backends = {"ModelExec", "ViTCoD"};
        tcfg.traceOutPath = traceOut;

        serve::TrafficConfig traffic;
        traffic.ratePerSec = 200.0;
        traffic.requests = std::min<size_t>(requests, 24);
        traffic.mix = {deit, levit};
        traffic.mixWeights = {0.7, 0.3};
        traffic.seed = 42;

        std::printf("\ntraced pass: %zu requests on ModelExec+ViTCoD "
                    "-> %s\n",
                    traffic.requests, traceOut.c_str());
        serve::InferenceServer server(tcfg);
        server.warmup({deit, levit});
        serve::runPoissonTraffic(server, traffic);
        server.drain();
        server.shutdown(); // stops the tracer and writes traceOut
    }

    std::printf("\ntotals: %llu requests served, %.1f J simulated "
                "energy\n",
                static_cast<unsigned long long>(totalServed),
                totalEnergy);
    std::printf("plan cache (last rate): %llu hits / %llu misses "
                "(hit rate %.2f%%), %.2fs compiling\n",
                static_cast<unsigned long long>(lastCache.hits),
                static_cast<unsigned long long>(lastCache.misses),
                100.0 * lastCache.hitRate(),
                lastCache.compileWallSeconds);

    std::printf("\nbackends at the last rate:\n");
    std::printf("%-10s %9s %9s %9s %12s %14s\n", "backend", "reqs",
                "batches", "switches", "sim busy s", "busy ticks");
    for (const auto &b : last.backends) {
        std::printf("%-10s %9llu %9llu %9llu %12.4f %14llu\n",
                    b.name.c_str(),
                    static_cast<unsigned long long>(b.requests),
                    static_cast<unsigned long long>(b.batches),
                    static_cast<unsigned long long>(b.planSwitches),
                    b.busySimSeconds + b.switchSimSeconds,
                    static_cast<unsigned long long>(b.busyTicks));
    }

    // Schedule-IR honesty check: each plan's compiled schedule was
    // priced once by the ViTCoD simulator; compare that prediction
    // with what the backends actually reported per request.
    std::printf("\npredicted vs measured per plan (last rate):\n");
    std::printf("%-28s %7s %12s %12s %7s\n", "plan", "reqs",
                "predicted s", "measured s", "ratio");
    for (const auto &p : last.plans) {
        std::printf("%-28s %7llu %12.6f %12.6f %7.3f\n",
                    p.key.c_str(),
                    static_cast<unsigned long long>(p.requests),
                    p.predictedSeconds, p.measuredMeanSeconds,
                    p.ratio());
    }
    return 0;
}
