/**
 * @file
 * AR/VR scenario (the paper's Strided Transformer motivation): 3D
 * human pose estimation inside a head-mounted display's latency
 * budget. An HMD pipeline wants pose updates well under the frame
 * time (11.1 ms at 90 Hz); the example checks which devices meet
 * the budget for the Strided Transformer at 90% attention sparsity
 * and how much of the budget attention alone consumes.
 */

#include <cstdio>
#include <iostream>

#include "accel/device.h"
#include "common/table.h"
#include "core/pipeline.h"

int
main()
{
    using namespace vitcod;

    const double frame_budget_ms = 1000.0 / 90.0; // 90 Hz HMD

    const auto m = model::stridedTransformer();
    const auto plan = core::buildModelPlan(
        m, core::makePipelineConfig(m.nominalSparsity, true));

    std::printf("Strided Transformer (n=351 frames, d=256): est. "
                "MPJPE %.1f mm (dense %.1f mm) at %.0f%% attention "
                "sparsity\n",
                plan.estimatedQuality, m.baselineQuality,
                100.0 * plan.avgSparsity);

    printBanner(std::cout,
                "90 Hz AR/VR budget check (11.1 ms per frame)");
    Table t({"Device", "Attention (ms)", "End-to-end (ms)",
             "Budget share", "Meets 90Hz?", "Energy/frame (mJ)"});
    auto devices = accel::makeAllDevices();
    for (auto &d : devices) {
        const accel::RunStats attn = d->runAttention(plan);
        const accel::RunStats e2e = d->runEndToEnd(plan);
        const double ms = e2e.seconds * 1e3;
        t.row()
            .cell(d->name())
            .cell(attn.seconds * 1e3, 3)
            .cell(ms, 3)
            .cell(100.0 * ms / frame_budget_ms, 1)
            .cell(ms <= frame_budget_ms ? "yes" : "no")
            .cell(e2e.energyJoules() * 1e3, 2);
    }
    t.print(std::cout);

    std::cout << "\nReading: the pose workload fits comfortably "
                 "inside the 90 Hz budget on the accelerators, "
                 "while general platforms burn most of the frame "
                 "time on attention alone.\n";
    return 0;
}
