/**
 * @file
 * Functional verification of a ViTCoD deployment: before trusting a
 * compiled plan on hardware, check numerically that executing the
 * fixed masks in the accelerator's permuted schedule preserves the
 * block's output. Runs one DeiT-Tiny block on random weights and
 * inputs through the dense reference and through the sparse-plan
 * path at several sparsity ratios, reporting the output drift (the
 * quantity the finetuning step absorbs).
 */

#include <cmath>
#include <cstdio>

#include "accel/functional.h"
#include "core/pipeline.h"
#include "core/reference_block.h"
#include "linalg/kernels.h"

int
main()
{
    using namespace vitcod;

    const auto m = model::deitTiny();
    const auto &stage = m.stages[0];
    Rng rng(2026);
    const core::ReferenceBlock blk(
        stage, core::BlockWeights::random(stage, rng));
    const linalg::Matrix x = linalg::Matrix::randomNormal(
        stage.tokens, stage.embedDim, rng);
    const linalg::Matrix dense = blk.forwardDense(x);

    std::printf("DeiT-Tiny block, n=%zu d=%zu h=%zu | output RMS "
                "%.4f\n\n",
                stage.tokens, stage.embedDim, stage.heads,
                linalg::frobeniusNorm(dense) /
                    std::sqrt(static_cast<double>(dense.rows() *
                                                  dense.cols())));
    std::printf("%-10s %-14s %-16s %-12s\n", "sparsity",
                "mass retained", "max |drift|", "rel. drift");

    for (double s : {0.0, 0.5, 0.7, 0.9, 0.95}) {
        auto cfg = core::makePipelineConfig(s, true);
        const auto plan = core::buildModelPlan(m, cfg);
        std::vector<core::SparseAttentionPlan> plans;
        double mass = 0.0;
        for (size_t head = 0; head < stage.heads; ++head) {
            plans.push_back(plan.planOf(5, head));
            mass += plans.back().retainedMass;
        }
        mass /= static_cast<double>(stage.heads);

        const linalg::Matrix sparse = blk.forwardSparse(x, plans);
        const double drift = linalg::maxAbsDiff(sparse, dense);
        const double rms =
            linalg::frobeniusNorm(dense) /
            std::sqrt(static_cast<double>(dense.rows() *
                                          dense.cols()));
        std::printf("%-10.0f %-14.3f %-16.5f %-12.4f\n", s * 100.0,
                    mass, drift, drift / rms);
    }

    std::printf("\nReading: a full mask is bit-equivalent; drift "
                "grows smoothly with pruned mass, which is exactly "
                "the error the paper's finetuning step trains "
                "around.\n");

    // Second check: the optimized kernel engine against the scalar
    // oracle on a full pipeline-built plan (kernel drift must be at
    // ulp scale; pruning drift is the table above).
    const auto plan =
        core::buildModelPlan(m, core::makePipelineConfig(0.9, true));
    const auto rep = accel::verifyPlanFunctional(
        plan, linalg::engine::KernelEngine::shared());
    std::printf("\nKernel engine vs scalar oracle over %zu heads at "
                "90%% sparsity: max |drift| %.3g (%s)\n",
                rep.headsChecked, rep.maxKernelDrift,
                rep.kernelsMatch(1e-4) ? "MATCH" : "MISMATCH");
    return rep.kernelsMatch(1e-4) ? 0 : 1;
}
