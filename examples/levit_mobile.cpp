/**
 * @file
 * Mobile-vision scenario (the paper's LeViT motivation): a camera
 * pipeline classifying frames on-device. Compares the LeViT family
 * at its nominal 80% sparsity on an EdgeGPU (Jetson-class) against
 * the ViTCoD accelerator: end-to-end latency, achievable frame
 * rate, energy per frame, and what that means for a phone-sized
 * battery budget.
 */

#include <cstdio>
#include <iostream>

#include "accel/platform.h"
#include "accel/vitcod_accel.h"
#include "common/table.h"
#include "core/pipeline.h"

int
main()
{
    using namespace vitcod;

    accel::PlatformModel edge(accel::edgeGpuXavierNX());
    accel::ViTCoDAccelerator vitcod;

    printBanner(std::cout,
                "Mobile deployment: LeViT family @80% sparsity, "
                "EdgeGPU vs ViTCoD accelerator");
    Table t({"Model", "Top-1 est.", "Edge e2e (ms)", "Edge fps",
             "ViTCoD e2e (ms)", "ViTCoD fps", "Edge mJ/frame",
             "ViTCoD mJ/frame", "Frames per Wh (ViTCoD)"});
    for (const auto &m :
         {model::levit128(), model::levit192(), model::levit256()}) {
        const auto plan = core::buildModelPlan(
            m, core::makePipelineConfig(m.nominalSparsity, true));
        const accel::RunStats e = edge.runEndToEnd(plan);
        const accel::RunStats v = vitcod.runEndToEnd(plan);
        t.row()
            .cell(m.name)
            .cell(plan.estimatedQuality, 1)
            .cell(e.seconds * 1e3, 2)
            .cell(1.0 / e.seconds, 0)
            .cell(v.seconds * 1e3, 2)
            .cell(1.0 / v.seconds, 0)
            .cell(e.energyJoules() * 1e3, 2)
            .cell(v.energyJoules() * 1e3, 3)
            .cell(3600.0 / v.energyJoules(), 0);
    }
    t.print(std::cout);

    std::printf("\nA 15 Wh phone battery sustains ~%.0f hours of "
                "30 fps LeViT-128 classification on the ViTCoD "
                "accelerator (core energy only).\n",
                [] {
                    const auto plan = core::buildModelPlan(
                        model::levit128(),
                        core::makePipelineConfig(0.8, true));
                    accel::ViTCoDAccelerator acc;
                    const double j =
                        acc.runEndToEnd(plan).energyJoules();
                    return 15.0 * 3600.0 / (j * 30.0) / 3600.0;
                }());
    return 0;
}
